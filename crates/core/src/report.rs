//! Text rendering of the analysis report: aligned tables and ASCII curves,
//! one renderer per paper table/figure. The `repro` harness prints these.

use crate::assoc::DURATION_BUCKETS;
use crate::pipeline::{
    AnalysisReport, CondProbPanel, Fig9Panel, FirmwarePanel, HourlyPanel, TtfSummary,
};
use crate::prefixes::Table7;
use crate::ttf::paper_breakpoints_hours;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Renders a simple aligned table: `header` row plus `rows`.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>width$}", width = widths[i]);
        }
        out.push('\n');
    };
    fmt_row(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
        &mut out,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        fmt_row(row, &widths, &mut out);
    }
    out
}

fn fmt_pct(v: f64) -> String {
    format!("{v:.0}%")
}

/// Table 2: the filtering funnel.
pub fn render_table2(r: &AnalysisReport) -> String {
    let f = &r.filter;
    let rows = vec![
        vec!["Total Probes".into(), f.total.to_string()],
        vec!["  Never changed".into(), f.never_changed.to_string()],
        vec!["  Dual Stack".into(), f.dual_stack.to_string()],
        vec!["  IPv6".into(), f.ipv6_only.to_string()],
        vec!["  Multihomed/Core/Datacenter (tags)".into(), f.tagged.to_string()],
        vec!["  Multihomed (alternating addresses)".into(), f.multihomed.to_string()],
        vec!["  Only change from 193.0.0.78".into(), f.testing_only.to_string()],
        vec!["Analyzable (geography)".into(), f.analyzable_geo.to_string()],
        vec!["  Multiple ASes".into(), f.multi_as.to_string()],
        vec!["Analyzable (AS-level)".into(), f.analyzable_as.to_string()],
    ];
    format!(
        "Table 2: probe filtering funnel\n{}",
        render_table(&["Category", "Probes"], &rows)
    )
}

/// A Fig. 1/2/3-style panel: one row per curve, sampled at the paper's
/// breakpoints, with total years and the 24 h / 1 w mode masses.
pub fn render_ttf_panel(title: &str, summaries: &[TtfSummary]) -> String {
    let breaks = paper_breakpoints_hours();
    let labels = ["1h", "6h", "12h", "1d", "3d", "1w", "2w", "1mo", "2mo"];
    let mut header: Vec<&str> = vec!["series", "years", "n"];
    header.extend(labels.iter());
    header.extend(["@24h", "@1w"].iter());
    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| {
            let mut row = vec![
                s.label.clone(),
                format!("{:.1}", s.total_years),
                s.n_durations.to_string(),
            ];
            for &b in &breaks {
                let frac = s
                    .curve
                    .iter()
                    .take_while(|(h, _)| *h <= b + 1e-9)
                    .last()
                    .map(|(_, f)| *f)
                    .unwrap_or(0.0);
                row.push(format!("{frac:.2}"));
            }
            row.push(format!("{:.2}", s.mode_24h));
            row.push(format!("{:.2}", s.mode_168h));
            row
        })
        .collect();
    format!("{title}\n{}", render_table(&header, &rows))
}

/// Table 5: periodic ASes.
pub fn render_table5(r: &AnalysisReport) -> String {
    let rows: Vec<Vec<String>> = r
        .table5
        .iter()
        .map(|row| {
            vec![
                row.name.clone(),
                if row.asn == 0 { String::new() } else { row.asn.to_string() },
                row.d_hours.to_string(),
                row.n.to_string(),
                row.fp25.to_string(),
                fmt_pct(row.pct_fp50),
                fmt_pct(row.pct_fp75),
                fmt_pct(row.pct_max_le_d),
                fmt_pct(row.pct_harmonic),
            ]
        })
        .collect();
    format!(
        "Table 5: periodically renumbering ASes\n{}",
        render_table(
            &["AS", "ASN", "d", "N", "f>0.25", "f>0.5", "f>0.75", "MAX<=d", "Harmonic"],
            &rows,
        )
    )
}

/// Fig. 4/5: hour-of-day histogram, rendered as a bar chart.
pub fn render_hourly(panel: &HourlyPanel) -> String {
    let max = panel.hist.iter().copied().max().unwrap_or(0).max(1);
    let mut out = format!(
        "Hour-of-day of periodic changes — {} (d = {} h), peak 6h window holds {:.0}%\n",
        panel.label,
        panel.d_hours,
        100.0 * panel.peak6h_fraction
    );
    for (h, &count) in panel.hist.iter().enumerate() {
        let bar = "#".repeat((count * 50).div_ceil(max));
        let _ = writeln!(out, "{h:>2}h {count:>6} {bar}");
    }
    out
}

/// Fig. 6: reboots per day with detected firmware-update days.
pub fn render_firmware(panel: &FirmwarePanel) -> String {
    let mut out = format!(
        "Fig 6: unique rebooting probes per day (median {:.0}); detected update days: {:?}\n",
        panel.median, panel.update_days
    );
    // Render the weekly maxima to keep the chart compact.
    let max = panel.daily.iter().copied().max().unwrap_or(0).max(1);
    for week in 0..52 {
        let lo = week * 7;
        let hi = (lo + 7).min(panel.daily.len());
        if lo >= panel.daily.len() {
            break;
        }
        let peak = panel.daily[lo..hi].iter().copied().max().unwrap_or(0);
        let bar = "#".repeat((peak * 50).div_ceil(max));
        let marker = if panel
            .update_days
            .iter()
            .any(|d| (*d as usize) >= lo && (*d as usize) < hi)
        {
            " <= update"
        } else {
            ""
        };
        let _ = writeln!(out, "wk{week:>2} {peak:>5} {bar}{marker}");
    }
    out
}

/// Fig. 7/8: per-probe P(ac|outage) CDF summary.
pub fn render_condprob(title: &str, panels: &[CondProbPanel]) -> String {
    let rows: Vec<Vec<String>> = panels
        .iter()
        .map(|p| {
            let n = p.probs.len().max(1);
            let med = p.probs.get(p.probs.len() / 2).copied().unwrap_or(0.0);
            vec![
                p.label.clone(),
                p.probs.len().to_string(),
                format!("{med:.2}"),
                format!("{:.0}%", 100.0 * p.fraction_ge(0.8)),
                format!(
                    "{:.0}%",
                    100.0 * p.probs.iter().filter(|&&x| x >= 1.0).count() as f64 / n as f64
                ),
            ]
        })
        .collect();
    format!(
        "{title}\n{}",
        render_table(&["AS (probes)", "n", "median P", "P>=0.8", "P=1"], &rows)
    )
}

/// Table 6: outage-renumbering ASes.
pub fn render_table6(r: &AnalysisReport) -> String {
    let rows: Vec<Vec<String>> = r
        .table6
        .iter()
        .map(|row| {
            vec![
                row.name.clone(),
                if row.asn == 0 { String::new() } else { row.asn.to_string() },
                row.n.to_string(),
                fmt_pct(row.pct_nw_gt08),
                fmt_pct(row.pct_nw_eq1),
                fmt_pct(row.pct_pw_gt08),
                fmt_pct(row.pct_pw_eq1),
            ]
        })
        .collect();
    format!(
        "Table 6: probability of address change upon outages\n{}",
        render_table(
            &["AS", "ASN", "N", "P(ac|nw)>0.8", "P(ac|nw)=1", "P(ac|pw)>0.8", "P(ac|pw)=1"],
            &rows,
        )
    )
}

/// Fig. 9: renumbering by outage duration for one AS.
pub fn render_fig9(panel: &Fig9Panel) -> String {
    let mut rows = Vec::new();
    let pcts = panel.buckets.percentages();
    for (i, (label, _, _)) in DURATION_BUCKETS.iter().enumerate() {
        rows.push(vec![
            label.to_string(),
            panel.buckets.total[i].to_string(),
            panel.buckets.renumbered[i].to_string(),
            pcts[i].map(|p| format!("{p:.0}%")).unwrap_or_else(|| "-".to_string()),
        ]);
    }
    format!(
        "Fig 9 panel — {}: renumbering by outage duration\n{}",
        panel.label,
        render_table(&["duration", "outages", "renumbered", "%"], &rows)
    )
}

/// Table 7: prefix changes.
pub fn render_table7(r: &AnalysisReport, names: &BTreeMap<u32, String>) -> String {
    let t: &Table7 = &r.table7;
    let mut rows = vec![vec![
        "All".to_string(),
        String::new(),
        t.overall.changes.to_string(),
        format!("{} ({:.1}%)", t.overall.diff_bgp, t.overall.pct_bgp()),
        format!("{} ({:.1}%)", t.overall.diff_16, t.overall.pct_16()),
        format!("{} ({:.1}%)", t.overall.diff_8, t.overall.pct_8()),
    ]];
    let mut per_as: Vec<(&u32, &crate::prefixes::PrefixChangeCounts)> =
        t.per_as.iter().collect();
    per_as.sort_by_key(|(_, c)| std::cmp::Reverse(c.changes));
    for (asn, c) in per_as.into_iter().take(12) {
        rows.push(vec![
            names.get(asn).cloned().unwrap_or_else(|| format!("AS{asn}")),
            asn.to_string(),
            c.changes.to_string(),
            format!("{} ({:.1}%)", c.diff_bgp, c.pct_bgp()),
            format!("{} ({:.1}%)", c.diff_16, c.pct_16()),
            format!("{} ({:.1}%)", c.diff_8, c.pct_8()),
        ]);
    }
    format!(
        "Table 7: address changes across prefixes\n{}",
        render_table(&["AS", "ASN", "Changes", "Diff BGP", "Diff /16", "Diff /8"], &rows)
    )
}

/// The complete report, every table and figure in paper order.
pub fn render_full(r: &AnalysisReport, names: &BTreeMap<u32, String>) -> String {
    let mut out = String::new();
    out.push_str(&render_table2(r));
    out.push('\n');
    out.push_str(&render_ttf_panel(
        "Fig 1: total time fraction by continent",
        &r.fig1_continents,
    ));
    out.push('\n');
    out.push_str(&render_ttf_panel("Fig 2: top ASes", &r.fig2_top_ases));
    out.push('\n');
    out.push_str(&render_ttf_panel("Fig 3: German ASes", &r.fig3_country));
    out.push('\n');
    out.push_str(&render_table5(r));
    out.push('\n');
    for panel in &r.hourly {
        out.push_str(&render_hourly(panel));
        out.push('\n');
    }
    out.push_str(&render_firmware(&r.firmware));
    out.push('\n');
    out.push_str(&render_condprob(
        "Fig 7: P(address change | network outage) per probe",
        &r.fig7_network,
    ));
    out.push('\n');
    out.push_str(&render_condprob(
        "Fig 8: P(address change | power outage) per probe (v3 only)",
        &r.fig8_power,
    ));
    out.push('\n');
    out.push_str(&render_table6(r));
    out.push('\n');
    for panel in &r.fig9 {
        out.push_str(&render_fig9(panel));
        out.push('\n');
    }
    out.push_str(&render_table7(r, names));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "20000".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("a"));
        assert!(lines[1].starts_with('-'));
        // All rows equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn fig9_renders_dashes_for_empty_buckets() {
        let panel = Fig9Panel {
            label: "LGI".to_string(),
            asn: 6830,
            buckets: crate::assoc::DurationBuckets { total: [0; 12], renumbered: [0; 12] },
        };
        let s = render_fig9(&panel);
        assert!(s.contains('-'));
        assert!(s.contains("<5m"));
        assert!(s.contains(">1w"));
    }

    #[test]
    fn hourly_renders_24_rows() {
        let panel = HourlyPanel {
            label: "DTAG".to_string(),
            asn: 3320,
            d_hours: 24,
            hist: [5; 24],
            peak6h_fraction: 0.25,
        };
        let s = render_hourly(&panel);
        assert_eq!(s.lines().count(), 25);
    }
}
