//! Live incremental analysis: the whole pipeline as per-probe state
//! machines over an append-only record stream.
//!
//! [`IncrementalAnalyzer`] is the resident-daemon form of the batch
//! pipeline: it holds one [`ProbeMachine`], [`RebootDetector`],
//! [`NetworkOutageDetector`], and [`KrootBracketer`] per probe, consumes
//! records one at a time in arrival order, maintains rolling Table 2
//! counts and ingest statistics, and can [`seal`](IncrementalAnalyzer::seal)
//! at any point into a full [`AnalysisReport`].
//!
//! **Replay equivalence** is the module's contract: replaying a complete
//! dataset through the analyzer (all meta rows, then every record in
//! arrival order — see [`replay_plan`]) and sealing produces a report
//! byte-for-byte identical to [`crate::pipeline::analyze`] over the same
//! dataset. The seal path reuses the batch pipeline's own
//! `finish_analysis`, firmware filter, and association code, so the only
//! logic that could diverge is the per-record state machines — and those
//! are the very machines the batch entry points drive, pinned further by
//! the workspace determinism tests and the ci.sh daemon gate.

use crate::assoc::{associate_network, associate_power, AssociatedOutage};
use crate::filtering::{AnalyzableProbe, FilterCounts, FilterReport, ProbeClass, ProbeMachine};
use crate::firmware::{reboot_series, strip_firmware_reboots};
use crate::outages::{
    classify_bracket, DarkBracket, KrootBracketer, NetworkOutage, NetworkOutageDetector,
    PowerOutage, Reboot, RebootDetector,
};
use crate::pipeline::{AnalysisConfig, AnalysisReport, FirmwarePanel, OutageAnalysis};
use dynaddr_atlas::logs::{
    AtlasDataset, ConnectionLogEntry, KrootPingRecord, ProbeMeta, SosUptimeRecord,
};
use dynaddr_exec::{par_map, par_map_flat};
use dynaddr_ip2as::MonthlySnapshots;
use dynaddr_types::SimTime;
use std::collections::BTreeMap;

/// Rolling ingest counters — cheap integers a daemon can report without
/// touching per-probe state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Probe-meta rows accepted.
    pub meta_rows: u64,
    /// Connection-log rows accepted.
    pub connection_rows: u64,
    /// K-root ping rows accepted.
    pub kroot_rows: u64,
    /// SOS-uptime rows accepted.
    pub uptime_rows: u64,
    /// Rows dropped because no meta row introduced their probe.
    pub unknown_probe_rows: u64,
    /// Address changes emitted so far.
    pub changes: u64,
    /// Inter-connection gaps emitted so far.
    pub gaps: u64,
    /// Completed network outages so far (an open loss run is not counted).
    pub network_outages: u64,
    /// Reboots detected so far.
    pub reboots: u64,
    /// Largest record arrival time seen (seconds; 0 before any record).
    pub frontier_secs: i64,
}

/// A point-in-time view of one probe's rolling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeView {
    /// The funnel verdict over the entries seen so far.
    pub class: ProbeClass,
    /// Whether any change so far crossed autonomous systems.
    pub multi_as: bool,
    /// Retained (stripped, IPv4) connection entries.
    pub entries: usize,
    /// Address changes emitted so far.
    pub changes: usize,
    /// Inter-connection gaps emitted so far.
    pub gaps: usize,
    /// Completed network outages so far.
    pub network_outages: usize,
    /// Reboots detected so far.
    pub reboots: usize,
    /// Whether a leading testing-address entry was stripped.
    pub had_testing: bool,
}

/// Per-probe machine bundle.
#[derive(Debug, Clone)]
struct ProbeState {
    machine: ProbeMachine,
    reboots: RebootDetector,
    netout: NetworkOutageDetector,
    bracketer: KrootBracketer,
    reboot_count: usize,
    /// Funnel bucket this probe currently occupies in the rolling counts.
    counted: (ProbeClass, bool),
}

/// The live pipeline: per-probe state machines + rolling aggregates.
///
/// Feed [`push_meta`](Self::push_meta) first for every probe, then records
/// in arrival order via [`push_connection`](Self::push_connection) /
/// [`push_kroot`](Self::push_kroot) / [`push_uptime`](Self::push_uptime)
/// (or [`apply`](Self::apply) over a [`replay_plan`]). Query rolling state
/// any time; [`seal`](Self::seal) renders the full report without
/// disturbing the live state.
pub struct IncrementalAnalyzer {
    snapshots: MonthlySnapshots,
    probes: BTreeMap<u32, ProbeState>,
    counts: FilterCounts,
    stats: IngestStats,
}

/// Adds (or removes) one probe from its funnel bucket and rebalances the
/// derived AS-level count, mirroring `FilterCounts::record` plus the
/// cross-probe derivation in `StreamingFilter::finish`.
fn tally(c: &mut FilterCounts, class: ProbeClass, multi_as: bool, add: bool) {
    let bump = |slot: &mut usize| {
        if add {
            *slot += 1;
        } else {
            *slot -= 1;
        }
    };
    match class {
        ProbeClass::Ipv6Only => bump(&mut c.ipv6_only),
        ProbeClass::DualStack => bump(&mut c.dual_stack),
        ProbeClass::Tagged => bump(&mut c.tagged),
        ProbeClass::Multihomed => bump(&mut c.multihomed),
        ProbeClass::TestingOnly => bump(&mut c.testing_only),
        ProbeClass::NeverChanged => bump(&mut c.never_changed),
        ProbeClass::Analyzable => {
            bump(&mut c.analyzable_geo);
            if multi_as {
                bump(&mut c.multi_as);
            }
        }
    }
    c.analyzable_as = c.analyzable_geo - c.multi_as;
}

impl IncrementalAnalyzer {
    /// An empty analyzer over the given IP-to-AS snapshots.
    pub fn new(snapshots: MonthlySnapshots) -> IncrementalAnalyzer {
        IncrementalAnalyzer {
            snapshots,
            probes: BTreeMap::new(),
            counts: FilterCounts::default(),
            stats: IngestStats::default(),
        }
    }

    /// Introduces a probe. Records for probes without a meta row are
    /// dropped (and counted), matching the batch pipeline, which iterates
    /// the meta table.
    pub fn push_meta(&mut self, meta: &ProbeMeta) {
        let id = meta.probe.0;
        if self.probes.contains_key(&id) {
            return;
        }
        let machine = ProbeMachine::new(meta.clone());
        let counted = (machine.class(), machine.multi_as());
        tally(&mut self.counts, counted.0, counted.1, true);
        self.counts.total += 1;
        self.probes.insert(
            id,
            ProbeState {
                machine,
                reboots: RebootDetector::new(),
                netout: NetworkOutageDetector::new(),
                bracketer: KrootBracketer::new(),
                reboot_count: 0,
                counted,
            },
        );
        self.stats.meta_rows += 1;
    }

    fn frontier(&mut self, t: SimTime) {
        self.stats.frontier_secs = self.stats.frontier_secs.max(t.0);
    }

    /// Feeds one connection-log entry (per-probe start-time order).
    pub fn push_connection(&mut self, e: &ConnectionLogEntry) {
        let Some(st) = self.probes.get_mut(&e.probe.0) else {
            self.stats.unknown_probe_rows += 1;
            return;
        };
        let (changes0, gaps0) = (st.machine.changes_len(), st.machine.gaps_len());
        st.machine.push(e, &self.snapshots);
        let now = (st.machine.class(), st.machine.multi_as());
        if now != st.counted {
            tally(&mut self.counts, st.counted.0, st.counted.1, false);
            tally(&mut self.counts, now.0, now.1, true);
            st.counted = now;
        }
        // Counts reset to zero when a probe settles out of the analyzable
        // funnel (heavy state dropped); only forward motion is tallied.
        self.stats.changes += st.machine.changes_len().saturating_sub(changes0) as u64;
        self.stats.gaps += st.machine.gaps_len().saturating_sub(gaps0) as u64;
        self.stats.connection_rows += 1;
        self.frontier(e.start);
    }

    /// Feeds one k-root ping record (per-probe time order).
    pub fn push_kroot(&mut self, r: &KrootPingRecord) {
        let Some(st) = self.probes.get_mut(&r.probe.0) else {
            self.stats.unknown_probe_rows += 1;
            return;
        };
        let before = st.netout.outages().len();
        st.netout.push(r);
        st.bracketer.push_kroot(r.timestamp);
        self.stats.network_outages += (st.netout.outages().len() - before) as u64;
        self.stats.kroot_rows += 1;
        self.frontier(r.timestamp);
    }

    /// Feeds one SOS-uptime record (per-probe time order).
    pub fn push_uptime(&mut self, r: &SosUptimeRecord) {
        let Some(st) = self.probes.get_mut(&r.probe.0) else {
            self.stats.unknown_probe_rows += 1;
            return;
        };
        if let Some(reboot) = st.reboots.push(r) {
            st.bracketer.push_reboot(reboot);
            st.reboot_count += 1;
            self.stats.reboots += 1;
        }
        // Safe prune bound: every future reboot of this probe boots after
        // this record's timestamp (the reboot rule requires it).
        st.bracketer.prune(r.timestamp);
        self.stats.uptime_rows += 1;
        self.frontier(r.timestamp);
    }

    /// Applies one replay step against its source dataset.
    pub fn apply(&mut self, ds: &AtlasDataset, row: ReplayRow) {
        match row {
            ReplayRow::Connection(i) => self.push_connection(&ds.connections[i]),
            ReplayRow::Kroot(i) => self.push_kroot(&ds.kroot[i]),
            ReplayRow::Uptime(i) => self.push_uptime(&ds.uptime[i]),
        }
    }

    /// Replays a whole dataset: all meta rows, then every record in arrival
    /// order. After this, [`seal`](Self::seal) matches the batch report.
    pub fn replay(&mut self, ds: &AtlasDataset) {
        for meta in &ds.meta {
            self.push_meta(meta);
        }
        for step in replay_plan(ds) {
            self.apply(ds, step.row);
        }
    }

    /// The rolling Table 2 funnel counts (provisional classes over the
    /// records seen so far; identical to the sealed counts once the stream
    /// is complete).
    pub fn rolling_counts(&self) -> &FilterCounts {
        &self.counts
    }

    /// The rolling ingest counters.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// Number of probes introduced so far.
    pub fn probes_tracked(&self) -> usize {
        self.probes.len()
    }

    /// A point-in-time view of one probe, if introduced.
    pub fn probe_view(&self, id: u32) -> Option<ProbeView> {
        let st = self.probes.get(&id)?;
        Some(ProbeView {
            class: st.machine.class(),
            multi_as: st.machine.multi_as(),
            entries: st.machine.entries_len(),
            changes: st.machine.changes_len(),
            gaps: st.machine.gaps_len(),
            network_outages: st.netout.outages().len(),
            reboots: st.reboot_count,
            had_testing: st.machine.had_testing(),
        })
    }

    /// Seals a snapshot of the live state into the full report. The live
    /// state is untouched (machines are cloned to run their `finish`), so a
    /// daemon can keep ingesting afterwards. After a complete replay this
    /// is byte-identical to [`crate::pipeline::analyze`].
    pub fn seal(&self, cfg: &AnalysisConfig) -> AnalysisReport {
        let _sp = dynaddr_obs::span("live_seal");
        // ----- Filtering funnel (Table 2) --------------------------------
        let states: Vec<(u32, &ProbeState)> =
            self.probes.iter().map(|(id, st)| (*id, st)).collect();
        let finished: Vec<(u32, ProbeClass, Option<AnalyzableProbe>)> =
            par_map(&states, |(id, st)| {
                let (class, probe) = st.machine.clone().finish();
                (*id, class, probe)
            });
        let mut counts = FilterCounts { total: states.len(), ..FilterCounts::default() };
        let mut classes = BTreeMap::new();
        let mut probes = Vec::new();
        for (id, class, probe) in finished {
            tally(&mut counts, class, probe.as_ref().is_some_and(|p| p.multi_as), true);
            classes.insert(id, class);
            probes.extend(probe);
        }
        let report = FilterReport { counts, classes, probes };

        // ----- Outage side -----------------------------------------------
        // Per analyzable probe (ascending id, the batch fan-out order):
        // resolved reboot brackets and completed network outages.
        let per_probe: Vec<(Vec<(Reboot, DarkBracket)>, Vec<NetworkOutage>)> =
            par_map(&report.probes, |p| {
                let st = &self.probes[&p.probe().0];
                (st.bracketer.clone().finish(), st.netout.clone().finish())
            });
        // The global reboot population feeds the firmware series, exactly
        // as the batch concatenation over analyzable probes does.
        let mut all_reboots: Vec<Reboot> = Vec::new();
        for (pairs, _) in &per_probe {
            all_reboots.extend(pairs.iter().map(|(r, _)| *r));
        }
        let series = reboot_series(&all_reboots);
        let firmware = FirmwarePanel {
            daily: series.daily_unique_probes.clone(),
            median: series.median,
            update_days: series.update_days.clone(),
        };
        let cleaned = strip_firmware_reboots(&all_reboots, &series.update_days);
        drop(all_reboots);
        let mut by_probe: BTreeMap<u32, Vec<Reboot>> = BTreeMap::new();
        for r in &cleaned {
            by_probe.entry(r.probe.0).or_default().push(*r);
        }

        let zipped: Vec<(&AnalyzableProbe, &(Vec<(Reboot, DarkBracket)>, Vec<NetworkOutage>))> =
            report.probes.iter().zip(per_probe.iter()).collect();
        let outages: Vec<AssociatedOutage> = par_map_flat(&zipped, |(p, (pairs, network))| {
            let mut found = associate_network(&p.events.gaps, network);
            // Power analysis only on hardware with reliable uptime counters.
            if p.meta.version.reliable_uptime() {
                let reboots =
                    by_probe.get(&p.probe().0).map(|v| v.as_slice()).unwrap_or(&[]);
                let power = power_from_brackets(reboots, pairs, network);
                found.extend(associate_power(&p.events.gaps, &power));
            }
            found
        });
        let oa = OutageAnalysis { outages, reboots: cleaned, firmware };
        crate::pipeline::finish_analysis(report, oa, &self.snapshots, cfg)
    }
}

/// The power-outage verdicts for a firmware-cleaned reboot subsequence,
/// from the probe's resolved brackets. Equivalent to the batch
/// `detect_power_outages(cleaned, kroot, network)`: `pairs` holds every
/// detected reboot of the probe in order with its batch-identical bracket,
/// and `cleaned` is a subsequence of those reboots.
fn power_from_brackets(
    cleaned: &[Reboot],
    pairs: &[(Reboot, DarkBracket)],
    network: &[NetworkOutage],
) -> Vec<PowerOutage> {
    let mut out = Vec::new();
    let mut j = 0usize;
    for r in cleaned {
        while j < pairs.len() && pairs[j].0 != *r {
            j += 1;
        }
        let Some((_, bracket)) = pairs.get(j) else {
            debug_assert!(false, "cleaned reboot missing from bracket list");
            break;
        };
        if let Some(p) = classify_bracket(r, *bracket, network) {
            out.push(p);
        }
        j += 1;
    }
    out
}

/// One row of a replay plan: an index into its dataset table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayRow {
    /// `dataset.connections[i]`.
    Connection(usize),
    /// `dataset.kroot[i]`.
    Kroot(usize),
    /// `dataset.uptime[i]`.
    Uptime(usize),
}

/// One replay step: a record reference and its arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStep {
    /// Arrival time (connection entries arrive at their start; pings and
    /// uptime reports at their timestamp).
    pub time: SimTime,
    /// The record.
    pub row: ReplayRow,
}

/// Builds the arrival-order replay plan for a normalized dataset: every
/// record of the three log tables, stably sorted by arrival time.
///
/// Stability is what makes replay equivalent to batch: the tables are
/// sorted by `(probe, time)`, so for ties in arrival time each probe's
/// records keep their per-table order — the only order the per-probe
/// machines are sensitive to. Cross-probe and cross-table interleaving is
/// free: machines are per-probe, and the k-root/uptime interplay in the
/// bracketer is tie-insensitive (a k-root round at the exact boot instant
/// brackets identically whichever side of the reboot it lands).
pub fn replay_plan(ds: &AtlasDataset) -> Vec<ReplayStep> {
    let mut plan =
        Vec::with_capacity(ds.connections.len() + ds.kroot.len() + ds.uptime.len());
    for (i, e) in ds.connections.iter().enumerate() {
        plan.push(ReplayStep { time: e.start, row: ReplayRow::Connection(i) });
    }
    for (i, r) in ds.kroot.iter().enumerate() {
        plan.push(ReplayStep { time: r.timestamp, row: ReplayRow::Kroot(i) });
    }
    for (i, r) in ds.uptime.iter().enumerate() {
        plan.push(ReplayStep { time: r.timestamp, row: ReplayRow::Uptime(i) });
    }
    plan.sort_by_key(|s| s.time); // stable
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::analyze;
    use crate::report::render_full;
    use dynaddr_atlas::world::{paper_route_tables, paper_world};

    /// The keystone property on a small world: full replay + seal renders
    /// byte-identically to the batch pipeline, and the rolling Table 2
    /// counts converge to the sealed ones.
    #[test]
    fn replay_seal_matches_batch_analyze() {
        let world = paper_world(0.02, 11);
        let out = dynaddr_atlas::simulate(&world);
        let snaps = paper_route_tables(&world);
        let mut cfg = AnalysisConfig { fig3_min_years: 0.03, ..AnalysisConfig::default() };
        for (asn, policy) in &out.truth.isp_policies {
            cfg.as_names.insert(*asn, policy.name.clone());
        }
        let batch = analyze(&out.dataset, &snaps, &cfg);

        let mut live = IncrementalAnalyzer::new(snaps);
        live.replay(&out.dataset);
        let sealed = live.seal(&cfg);

        assert_eq!(
            render_full(&sealed, &cfg.as_names),
            render_full(&batch, &cfg.as_names),
            "replayed seal must render byte-identically to batch analyze"
        );
        assert_eq!(*live.rolling_counts(), batch.filter, "rolling counts converge");
        let st = live.stats();
        assert_eq!(st.meta_rows as usize, out.dataset.meta.len());
        assert_eq!(st.connection_rows as usize, out.dataset.connections.len());
        assert_eq!(st.kroot_rows as usize, out.dataset.kroot.len());
        assert_eq!(st.uptime_rows as usize, out.dataset.uptime.len());
        assert_eq!(st.unknown_probe_rows, 0);
    }

    /// Sealing mid-stream must not disturb the live state: a seal after
    /// every prefix of the stream, then a final seal, still matches batch.
    #[test]
    fn mid_stream_seal_is_non_destructive() {
        let world = paper_world(0.01, 3);
        let out = dynaddr_atlas::simulate(&world);
        let snaps = paper_route_tables(&world);
        let cfg = AnalysisConfig { fig3_min_years: 0.01, ..AnalysisConfig::default() };
        let batch = analyze(&out.dataset, &snaps, &cfg);

        let mut live = IncrementalAnalyzer::new(snaps);
        for meta in &out.dataset.meta {
            live.push_meta(meta);
        }
        let plan = replay_plan(&out.dataset);
        for (i, step) in plan.iter().enumerate() {
            if i == plan.len() / 3 || i == 2 * plan.len() / 3 {
                let _ = live.seal(&cfg); // must not perturb anything
            }
            live.apply(&out.dataset, step.row);
        }
        let sealed = live.seal(&cfg);
        assert_eq!(
            render_full(&sealed, &cfg.as_names),
            render_full(&batch, &cfg.as_names)
        );
    }

    #[test]
    fn rows_before_meta_are_dropped_and_counted() {
        let snaps = MonthlySnapshots::uniform(dynaddr_ip2as::RouteTable::new());
        let mut live = IncrementalAnalyzer::new(snaps);
        live.push_connection(&ConnectionLogEntry {
            probe: dynaddr_types::ProbeId(7),
            start: SimTime(0),
            end: SimTime(60),
            peer: dynaddr_atlas::logs::PeerAddr::V4("10.0.0.1".parse().unwrap()),
        });
        assert_eq!(live.stats().unknown_probe_rows, 1);
        assert_eq!(live.probes_tracked(), 0);
        assert!(live.probe_view(7).is_none());
    }
}
