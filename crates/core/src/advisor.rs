//! Address-lifetime advisory — the paper's motivating application turned
//! into an API.
//!
//! The paper's introduction and conclusions are addressed to people who use
//! IP addresses as end-host identifiers: blacklist operators, user-counting
//! researchers, law enforcement. This module condenses the pipeline's
//! findings into a per-AS advisory answering their operational questions:
//!
//! * how long does an address keep identifying the same household
//!   (time-weighted median lifetime, and the hard periodic cap if one
//!   exists)?
//! * can a user shed the identifier at will by rebooting the CPE
//!   (renumber-on-reconnect plants, Table 6)?
//! * does blocking the enclosing prefix help (Table 7 escape rates)?

use crate::assoc::{cond_prob, OutageKind};
use crate::filtering::AnalyzableProbe;
use crate::periodic::{table5, PeriodicConfig};
use crate::pipeline::outage_analysis;
use crate::prefixes::prefix_changes;
use crate::stats::median;
use crate::ttf::TtfDistribution;
use dynaddr_atlas::logs::AtlasDataset;
use dynaddr_ip2as::MonthlySnapshots;
use serde::Serialize;
use std::collections::BTreeMap;

/// How confidently a user in this AS can evade an address-based identifier
/// by power-cycling their CPE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RebootEvasion {
    /// Most probes renumber on any outage: evasion at will.
    AtWill,
    /// A substantial minority renumber on outages.
    Sometimes,
    /// Outages rarely change the address.
    Unlikely,
    /// Not enough outage evidence.
    Unknown,
}

/// Per-AS advisory.
#[derive(Debug, Clone, Serialize)]
pub struct AsAdvisory {
    /// The AS.
    pub asn: u32,
    /// Probes contributing evidence.
    pub probes: usize,
    /// Measured address durations contributing evidence.
    pub durations: usize,
    /// Time-weighted median address lifetime, hours.
    pub median_lifetime_hours: f64,
    /// Hard periodic cap in hours, when the AS renumbers periodically.
    pub periodic_cap_hours: Option<i64>,
    /// Reboot-evasion verdict.
    pub reboot_evasion: RebootEvasion,
    /// Fraction of changes escaping the BGP prefix.
    pub bgp_escape: f64,
    /// Fraction of changes escaping the /8.
    pub slash8_escape: f64,
    /// The recommended maximum time to trust an address-based identifier:
    /// the periodic cap when present, otherwise the median lifetime.
    pub max_identifier_ttl_hours: f64,
}

/// Builds advisories for every AS with at least `min_durations` measured
/// durations. Keyed by ASN.
pub fn advise(
    dataset: &AtlasDataset,
    probes: &[AnalyzableProbe],
    snapshots: &MonthlySnapshots,
    min_durations: usize,
) -> BTreeMap<u32, AsAdvisory> {
    // Lifetimes.
    let mut per_as_durations: BTreeMap<u32, TtfDistribution> = BTreeMap::new();
    let mut per_as_probes: BTreeMap<u32, usize> = BTreeMap::new();
    for p in probes {
        if p.multi_as {
            continue;
        }
        *per_as_probes.entry(p.primary_asn.0).or_insert(0) += 1;
        per_as_durations
            .entry(p.primary_asn.0)
            .or_default()
            .extend(p.same_as_durations());
    }

    // Periodic caps.
    let (rows, _) = table5(probes, &BTreeMap::new(), &PeriodicConfig::default());
    let caps: BTreeMap<u32, i64> = rows
        .iter()
        .filter(|r| r.asn != 0)
        .map(|r| (r.asn, r.d_hours))
        .collect();

    // Reboot evasion from P(ac|nw).
    let oa = outage_analysis(dataset, probes);
    let mut per_as_pac: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    for p in probes {
        if p.multi_as {
            continue;
        }
        let cp = cond_prob(p.probe(), &oa.outages, OutageKind::Network);
        if cp.outages >= 3 {
            per_as_pac.entry(p.primary_asn.0).or_default().push(cp.p());
        }
    }

    // Prefix escapes.
    let t7 = prefix_changes(probes, snapshots);

    let mut out = BTreeMap::new();
    for (asn, dist) in per_as_durations {
        if dist.count() < min_durations {
            continue;
        }
        let curve = dist.finalize();
        let median_lifetime_hours = curve
            .curve()
            .iter()
            .find(|(_, f)| *f >= 0.5)
            .map(|(h, _)| *h)
            .unwrap_or(0.0);
        let periodic_cap_hours = caps.get(&asn).copied();
        let reboot_evasion = match per_as_pac.get(&asn).map(|v| (v.len(), median(v))) {
            Some((n, Some(med))) if n >= 3 => {
                if med > 0.8 {
                    RebootEvasion::AtWill
                } else if med > 0.3 {
                    RebootEvasion::Sometimes
                } else {
                    RebootEvasion::Unlikely
                }
            }
            _ => RebootEvasion::Unknown,
        };
        let (bgp_escape, slash8_escape) = t7
            .per_as
            .get(&asn)
            .filter(|c| c.changes > 0)
            .map(|c| (c.pct_bgp() / 100.0, c.pct_8() / 100.0))
            .unwrap_or((0.0, 0.0));
        out.insert(
            asn,
            AsAdvisory {
                asn,
                probes: per_as_probes.get(&asn).copied().unwrap_or(0),
                durations: curve.count(),
                median_lifetime_hours,
                periodic_cap_hours,
                reboot_evasion,
                bgp_escape,
                slash8_escape,
                max_identifier_ttl_hours: periodic_cap_hours
                    .map(|d| d as f64)
                    .unwrap_or(median_lifetime_hours),
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynaddr_atlas::world::{paper_route_tables, paper_world};
    use dynaddr_atlas::simulate;

    #[test]
    fn advisories_capture_the_paper_contrast() {
        let world = paper_world(0.05, 21);
        let out = simulate(&world);
        let snaps = paper_route_tables(&world);
        let filtered = crate::filtering::filter_probes(&out.dataset, &snaps);
        let advisories = advise(&out.dataset, &filtered.probes, &snaps, 20);

        let dtag = advisories.get(&3320).expect("DTAG advisory");
        assert_eq!(dtag.periodic_cap_hours, Some(24));
        assert!(dtag.max_identifier_ttl_hours <= 24.0);
        assert_eq!(dtag.reboot_evasion, RebootEvasion::AtWill);

        let orange = advisories.get(&3215).expect("Orange advisory");
        assert_eq!(orange.periodic_cap_hours, Some(168));
        assert!(orange.bgp_escape > 0.4, "Orange escapes prefixes: {}", orange.bgp_escape);

        if let Some(lgi) = advisories.get(&6830) {
            assert_eq!(lgi.periodic_cap_hours, None);
            assert!(
                lgi.median_lifetime_hours > 24.0 * 7.0,
                "LGI lifetimes are weeks: {}",
                lgi.median_lifetime_hours
            );
            assert!(matches!(
                lgi.reboot_evasion,
                RebootEvasion::Unlikely | RebootEvasion::Unknown
            ));
        }
    }

    #[test]
    fn min_durations_gates_sparse_ases() {
        let world = paper_world(0.05, 21);
        let out = simulate(&world);
        let snaps = paper_route_tables(&world);
        let filtered = crate::filtering::filter_probes(&out.dataset, &snaps);
        let all = advise(&out.dataset, &filtered.probes, &snaps, 1);
        let gated = advise(&out.dataset, &filtered.probes, &snaps, 500);
        assert!(all.len() > gated.len());
        for adv in gated.values() {
            assert!(adv.durations >= 500);
        }
    }
}
