//! Outage detection from the k-root ping and SOS-uptime datasets (§3.4–3.6).
//!
//! * **Network outages**: a maximal run of k-root records in which all pings
//!   were lost, with the LTS ("last time synchronised") value growing —
//!   two mostly-independent signals that the probe's network was down while
//!   the probe itself stayed up. The outage interval `[first, last]` of lost
//!   records underestimates the true outage by up to eight minutes, as the
//!   paper notes.
//! * **Reboots**: the SOS uptime counter resetting between consecutive
//!   records; the boot instant is `timestamp − uptime`.
//! * **Power outages**: a reboot coincident with *missing* k-root rounds —
//!   the probe was dark, so it wasn't a network outage. The outage duration
//!   is estimated as the gap between the k-root records bracketing the boot.

use dynaddr_atlas::logs::{KrootPingRecord, SosUptimeRecord};
use dynaddr_types::{ProbeId, SimDuration, SimTime};

/// Nominal spacing of k-root measurement rounds (four minutes).
pub const KROOT_GRID_SECS: i64 = 240;

/// A detected network outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkOutage {
    /// The probe.
    pub probe: ProbeId,
    /// Timestamp of the first all-lost record.
    pub start: SimTime,
    /// Timestamp of the last all-lost record.
    pub end: SimTime,
}

impl NetworkOutage {
    /// The measured duration (underestimates by up to ~8 minutes).
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// A detected reboot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reboot {
    /// The probe.
    pub probe: ProbeId,
    /// The boot instant implied by the uptime counter.
    pub boot_time: SimTime,
    /// When the post-reboot record was reported.
    pub report_time: SimTime,
}

/// A detected power outage (reboot + missing pings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerOutage {
    /// The probe.
    pub probe: ProbeId,
    /// The boot instant ending the outage.
    pub boot_time: SimTime,
    /// Last k-root record before the dark period.
    pub dark_start: SimTime,
    /// First k-root record after the dark period.
    pub dark_end: SimTime,
}

impl PowerOutage {
    /// The estimated duration: the bracketing-ping gap (overestimates by up
    /// to ~8 minutes).
    pub fn duration(&self) -> SimDuration {
        self.dark_end - self.dark_start
    }
}

/// Detects network outages in one probe's time-sorted k-root records.
///
/// A run qualifies when every record lost all pings and the LTS values are
/// strictly increasing across the run (a single lost round qualifies when
/// its LTS already exceeds the measurement cadence — the clock had not
/// synced for longer than one round).
pub fn detect_network_outages(records: &[KrootPingRecord]) -> Vec<NetworkOutage> {
    let mut out = Vec::new();
    let mut run: Option<(usize, usize)> = None; // [start, end] indices
    let flush = |run: Option<(usize, usize)>, out: &mut Vec<NetworkOutage>| {
        if let Some((a, b)) = run {
            let lts_grew = if a == b {
                records[a].lts_secs > KROOT_GRID_SECS
            } else {
                records[a..=b].windows(2).all(|w| w[1].lts_secs > w[0].lts_secs)
            };
            if lts_grew {
                out.push(NetworkOutage {
                    probe: records[a].probe,
                    start: records[a].timestamp,
                    end: records[b].timestamp,
                });
            }
        }
    };
    for (i, rec) in records.iter().enumerate() {
        debug_assert!(i == 0 || records[i - 1].timestamp <= rec.timestamp, "sorted input");
        if rec.all_lost() {
            run = match run {
                Some((a, _)) => Some((a, i)),
                None => Some((i, i)),
            };
        } else {
            flush(run.take(), &mut out);
        }
    }
    flush(run, &mut out);
    out
}

/// Detects reboots in one probe's time-sorted SOS-uptime records: the
/// counter going backwards implies a reset in between.
pub fn detect_reboots(records: &[SosUptimeRecord]) -> Vec<Reboot> {
    let mut out = Vec::new();
    for pair in records.windows(2) {
        let (prev, next) = (&pair[0], &pair[1]);
        // Counter must have reset: the implied boot is after the previous
        // report (a merely-smaller counter from reordered records is not).
        if next.uptime_secs as i64 - (next.timestamp - prev.timestamp).secs()
            < prev.uptime_secs as i64
            && next.boot_time() > prev.timestamp
        {
            out.push(Reboot {
                probe: next.probe,
                boot_time: next.boot_time(),
                report_time: next.timestamp,
            });
        }
    }
    out
}

/// Classifies reboots into power outages using the k-root record stream.
///
/// A reboot is a power outage when the k-root rounds around the boot show a
/// dark period: the gap between the bracketing records spans at least two
/// measurement rounds (i.e., at least one round is missing), and the records
/// inside the gap (there are none, by construction of the brackets) did not
/// already mark it as a *network* outage.
pub fn detect_power_outages(
    reboots: &[Reboot],
    kroot: &[KrootPingRecord],
    network: &[NetworkOutage],
) -> Vec<PowerOutage> {
    let mut out = Vec::new();
    for reboot in reboots {
        // Bracketing k-root records around the boot instant.
        let after_idx = kroot.partition_point(|r| r.timestamp < reboot.boot_time);
        if after_idx == 0 || after_idx >= kroot.len() {
            continue;
        }
        let before = &kroot[after_idx - 1];
        let after = &kroot[after_idx];
        let gap = (after.timestamp - before.timestamp).secs();
        if gap < 2 * KROOT_GRID_SECS {
            continue; // no missing rounds: not a power outage
        }
        // Priority ordering (§3.6): if a network outage overlaps this dark
        // window, the gap is attributed to the network outage instead.
        let overlaps_network = network.iter().any(|n| {
            n.end >= before.timestamp && n.start <= after.timestamp
        });
        if overlaps_network {
            continue;
        }
        out.push(PowerOutage {
            probe: reboot.probe,
            boot_time: reboot.boot_time,
            dark_start: before.timestamp,
            dark_end: after.timestamp,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: i64, success: u8, lts: i64) -> KrootPingRecord {
        KrootPingRecord {
            probe: ProbeId(16893),
            timestamp: SimTime(ts),
            sent: 3,
            success,
            lts_secs: lts,
        }
    }

    fn sos(ts: i64, uptime: u64) -> SosUptimeRecord {
        SosUptimeRecord { probe: ProbeId(206), timestamp: SimTime(ts), uptime_secs: uptime }
    }

    #[test]
    fn paper_table3_example() {
        // Table 3: outage from 09:05:48 to 09:21:40 (offsets in seconds).
        let records = vec![
            rec(0, 3, 86),
            rec(246, 0, 151),
            rec(483, 0, 388),
            rec(714, 0, 619),
            rec(967, 0, 872),
            rec(1198, 0, 1103),
            rec(1437, 3, 1342),
            rec(1674, 3, 146),
        ];
        let outages = detect_network_outages(&records);
        assert_eq!(outages.len(), 1);
        assert_eq!(outages[0].start, SimTime(246));
        assert_eq!(outages[0].end, SimTime(1198));
        assert_eq!(outages[0].duration(), SimDuration::from_secs(952));
    }

    #[test]
    fn loss_without_growing_lts_is_not_an_outage() {
        // Lost pings but the probe kept syncing its clock: k-root itself had
        // trouble, not the probe's network.
        let records = vec![rec(0, 3, 100), rec(240, 0, 90), rec(480, 0, 85), rec(720, 3, 95)];
        assert!(detect_network_outages(&records).is_empty());
    }

    #[test]
    fn single_lost_round_with_high_lts_detected() {
        let records = vec![rec(0, 3, 100), rec(240, 0, 340), rec(480, 3, 60)];
        let outages = detect_network_outages(&records);
        assert_eq!(outages.len(), 1);
        assert_eq!(outages[0].start, outages[0].end);
    }

    #[test]
    fn single_lost_round_with_low_lts_ignored() {
        let records = vec![rec(0, 3, 100), rec(240, 0, 120), rec(480, 3, 60)];
        assert!(detect_network_outages(&records).is_empty());
    }

    #[test]
    fn back_to_back_outages_split_by_success() {
        let records = vec![
            rec(0, 3, 50),
            rec(240, 0, 290),
            rec(480, 0, 530),
            rec(720, 3, 40),
            rec(960, 0, 280),
            rec(1200, 3, 30),
        ];
        let outages = detect_network_outages(&records);
        assert_eq!(outages.len(), 2);
    }

    #[test]
    fn reboot_detection_matches_table4() {
        // Table 4: 315,038 s of uptime, then a 19 s record → boot 19 s
        // before its timestamp.
        let records = vec![sos(0, 262_531), sos(52_508, 315_038), sos(52_537, 19)];
        let reboots = detect_reboots(&records);
        assert_eq!(reboots.len(), 1);
        assert_eq!(reboots[0].boot_time, SimTime(52_537 - 19));
    }

    #[test]
    fn growing_uptime_is_not_a_reboot() {
        let records = vec![sos(0, 100), sos(1_000, 1_100), sos(5_000, 5_100)];
        assert!(detect_reboots(&records).is_empty());
    }

    #[test]
    fn power_outage_requires_missing_rounds() {
        let reboot = Reboot {
            probe: ProbeId(1),
            boot_time: SimTime(1_000),
            report_time: SimTime(1_060),
        };
        // Dark period: records at 240 and 1_200 bracket the boot (4 rounds
        // missing).
        let kroot = vec![rec(0, 3, 50), rec(240, 3, 60), rec(1_200, 3, 70)];
        let power = detect_power_outages(&[reboot], &kroot, &[]);
        assert_eq!(power.len(), 1);
        assert_eq!(power[0].dark_start, SimTime(240));
        assert_eq!(power[0].dark_end, SimTime(1_200));
        assert_eq!(power[0].duration(), SimDuration::from_secs(960));

        // Same reboot with a complete ping grid: no power outage.
        let dense: Vec<KrootPingRecord> =
            (0..8).map(|i| rec(i * 240, 3, 50 + i)).collect();
        assert!(detect_power_outages(&[reboot], &dense, &[]).is_empty());
    }

    #[test]
    fn network_outage_takes_priority_over_power() {
        let reboot = Reboot {
            probe: ProbeId(1),
            boot_time: SimTime(1_000),
            report_time: SimTime(1_100),
        };
        let kroot = vec![rec(0, 3, 50), rec(240, 3, 60), rec(1_200, 3, 70)];
        let network = vec![NetworkOutage {
            probe: ProbeId(1),
            start: SimTime(400),
            end: SimTime(900),
        }];
        assert!(detect_power_outages(&[reboot], &kroot, &network).is_empty());
    }

    #[test]
    fn empty_inputs() {
        assert!(detect_network_outages(&[]).is_empty());
        assert!(detect_reboots(&[]).is_empty());
        assert!(detect_power_outages(&[], &[], &[]).is_empty());
    }
}
