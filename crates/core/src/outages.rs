//! Outage detection from the k-root ping and SOS-uptime datasets (§3.4–3.6).
//!
//! * **Network outages**: a maximal run of k-root records in which all pings
//!   were lost, with the LTS ("last time synchronised") value growing —
//!   two mostly-independent signals that the probe's network was down while
//!   the probe itself stayed up. The outage interval `[first, last]` of lost
//!   records underestimates the true outage by up to eight minutes, as the
//!   paper notes.
//! * **Reboots**: the SOS uptime counter resetting between consecutive
//!   records; the boot instant is `timestamp − uptime`.
//! * **Power outages**: a reboot coincident with *missing* k-root rounds —
//!   the probe was dark, so it wasn't a network outage. The outage duration
//!   is estimated as the gap between the k-root records bracketing the boot.

use dynaddr_atlas::logs::{KrootPingRecord, SosUptimeRecord};
use dynaddr_types::{ProbeId, SimDuration, SimTime};

/// Nominal spacing of k-root measurement rounds (four minutes).
pub const KROOT_GRID_SECS: i64 = 240;

/// A detected network outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkOutage {
    /// The probe.
    pub probe: ProbeId,
    /// Timestamp of the first all-lost record.
    pub start: SimTime,
    /// Timestamp of the last all-lost record.
    pub end: SimTime,
}

impl NetworkOutage {
    /// The measured duration (underestimates by up to ~8 minutes).
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// A detected reboot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reboot {
    /// The probe.
    pub probe: ProbeId,
    /// The boot instant implied by the uptime counter.
    pub boot_time: SimTime,
    /// When the post-reboot record was reported.
    pub report_time: SimTime,
}

/// A detected power outage (reboot + missing pings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerOutage {
    /// The probe.
    pub probe: ProbeId,
    /// The boot instant ending the outage.
    pub boot_time: SimTime,
    /// Last k-root record before the dark period.
    pub dark_start: SimTime,
    /// First k-root record after the dark period.
    pub dark_end: SimTime,
}

impl PowerOutage {
    /// The estimated duration: the bracketing-ping gap (overestimates by up
    /// to ~8 minutes).
    pub fn duration(&self) -> SimDuration {
        self.dark_end - self.dark_start
    }
}

/// Incremental network-outage detector: the state machine behind
/// [`detect_network_outages`], usable one record at a time.
///
/// Between pushes it carries only the open all-lost run (bounds, first/last
/// LTS, monotonicity flag) plus the completed outages, so a resident daemon
/// holds O(1) state per probe beyond its output.
#[derive(Debug, Clone, Default)]
pub struct NetworkOutageDetector {
    out: Vec<NetworkOutage>,
    run: Option<LossRun>,
}

#[derive(Debug, Clone, Copy)]
struct LossRun {
    probe: ProbeId,
    start: SimTime,
    end: SimTime,
    single: bool,
    first_lts: i64,
    last_lts: i64,
    lts_monotonic: bool,
}

impl NetworkOutageDetector {
    /// A fresh detector with no records seen.
    pub fn new() -> NetworkOutageDetector {
        NetworkOutageDetector::default()
    }

    /// Feeds the next k-root record (time order).
    pub fn push(&mut self, rec: &KrootPingRecord) {
        if rec.all_lost() {
            match self.run.as_mut() {
                Some(run) => {
                    debug_assert!(run.end <= rec.timestamp, "sorted input");
                    run.end = rec.timestamp;
                    run.single = false;
                    run.lts_monotonic &= rec.lts_secs > run.last_lts;
                    run.last_lts = rec.lts_secs;
                }
                None => {
                    self.run = Some(LossRun {
                        probe: rec.probe,
                        start: rec.timestamp,
                        end: rec.timestamp,
                        single: true,
                        first_lts: rec.lts_secs,
                        last_lts: rec.lts_secs,
                        lts_monotonic: true,
                    });
                }
            }
        } else {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if let Some(run) = self.run.take() {
            let lts_grew = if run.single {
                run.first_lts > KROOT_GRID_SECS
            } else {
                run.lts_monotonic
            };
            if lts_grew {
                self.out.push(NetworkOutage {
                    probe: run.probe,
                    start: run.start,
                    end: run.end,
                });
            }
        }
    }

    /// The outages completed so far (an open loss run is not yet counted).
    pub fn outages(&self) -> &[NetworkOutage] {
        &self.out
    }

    /// Flushes the trailing run and returns all detected outages.
    pub fn finish(mut self) -> Vec<NetworkOutage> {
        self.flush();
        self.out
    }
}

/// Detects network outages in one probe's time-sorted k-root records.
///
/// A run qualifies when every record lost all pings and the LTS values are
/// strictly increasing across the run (a single lost round qualifies when
/// its LTS already exceeds the measurement cadence — the clock had not
/// synced for longer than one round). Batch driver over
/// [`NetworkOutageDetector`].
pub fn detect_network_outages(records: &[KrootPingRecord]) -> Vec<NetworkOutage> {
    let mut m = NetworkOutageDetector::new();
    for rec in records {
        m.push(rec);
    }
    m.finish()
}

/// Incremental reboot detector: the state machine behind [`detect_reboots`].
/// Carries only the previous uptime record between pushes.
#[derive(Debug, Clone, Default)]
pub struct RebootDetector {
    prev: Option<SosUptimeRecord>,
}

impl RebootDetector {
    /// A fresh detector with no records seen.
    pub fn new() -> RebootDetector {
        RebootDetector::default()
    }

    /// Feeds the next SOS-uptime record (time order); returns the reboot it
    /// reveals, if any.
    pub fn push(&mut self, rec: &SosUptimeRecord) -> Option<Reboot> {
        let prev = self.prev.replace(*rec)?;
        // Counter must have reset: the implied boot is after the previous
        // report (a merely-smaller counter from reordered records is not).
        if (rec.uptime_secs as i64) - (rec.timestamp - prev.timestamp).secs()
            < prev.uptime_secs as i64
            && rec.boot_time() > prev.timestamp
        {
            Some(Reboot {
                probe: rec.probe,
                boot_time: rec.boot_time(),
                report_time: rec.timestamp,
            })
        } else {
            None
        }
    }
}

/// Detects reboots in one probe's time-sorted SOS-uptime records: the
/// counter going backwards implies a reset in between. Batch driver over
/// [`RebootDetector`].
pub fn detect_reboots(records: &[SosUptimeRecord]) -> Vec<Reboot> {
    let mut m = RebootDetector::new();
    records.iter().filter_map(|rec| m.push(rec)).collect()
}

/// The k-root records bracketing one reboot's boot instant: `(timestamp of
/// the last record before boot, timestamp of the first record at/after
/// boot)`, or `None` when the boot falls before the first or after the last
/// k-root record.
pub type DarkBracket = Option<(SimTime, SimTime)>;

/// Incremental power-outage bracketer for one probe.
///
/// The batch rule brackets each reboot's boot instant between the k-root
/// records around it (`partition_point` over the full record array). This
/// machine reproduces those brackets from an interleaved time-ordered stream
/// of k-root timestamps and reboots while retaining only a short window of
/// k-root timestamps:
///
/// * a reboot whose boot instant is at or before the newest k-root record
///   resolves immediately by binary search over the retained window;
/// * otherwise it parks as *pending* until a k-root record at/after its boot
///   instant arrives (resolving with that record as the right bracket), or
///   until [`finish`](Self::finish) (no right bracket → `None`, matching the
///   batch `after_idx >= len` skip).
///
/// [`prune`](Self::prune) may drop retained timestamps `≤ bound` (keeping
/// the newest such, which is the only one a later boot can still bracket
/// with) whenever the caller knows every future reboot boots after `bound` —
/// true for the timestamp of any already-processed uptime record, because
/// the reboot rule requires `boot_time > prev.timestamp`. Pruning therefore
/// never changes the emitted brackets, only the memory held.
#[derive(Debug, Clone, Default)]
pub struct KrootBracketer {
    /// Retained k-root timestamps, ascending.
    window: std::collections::VecDeque<SimTime>,
    /// Reboots awaiting a k-root record at/after their boot instant.
    pending: Vec<Reboot>,
    /// Resolved `(reboot, bracket)` pairs, in reboot order.
    resolved: Vec<(Reboot, DarkBracket)>,
}

impl KrootBracketer {
    /// A fresh bracketer with no records seen.
    pub fn new() -> KrootBracketer {
        KrootBracketer::default()
    }

    /// Feeds the next k-root record timestamp (time order).
    pub fn push_kroot(&mut self, ts: SimTime) {
        debug_assert!(self.window.back().is_none_or(|&b| b <= ts), "sorted input");
        // This record is the first at/after every pending boot ≤ it: the
        // right bracket. The left bracket is the newest earlier record.
        if !self.pending.is_empty() {
            let take = self.pending.iter().take_while(|r| r.boot_time <= ts).count();
            for r in self.pending.drain(..take) {
                let bracket = self.window.back().map(|&before| (before, ts));
                self.resolved.push((r, bracket));
            }
        }
        self.window.push_back(ts);
    }

    /// Feeds the next detected reboot. Reboots must arrive in boot order,
    /// interleaved with k-root pushes such that every k-root record strictly
    /// before the boot instant has already been pushed (true when both
    /// streams are fed in record-time order: the reboot surfaces at its
    /// report time, which is at or after its boot time).
    pub fn push_reboot(&mut self, r: Reboot) {
        let idx = self.window.partition_point(|&ts| ts < r.boot_time);
        if idx == self.window.len() {
            self.pending.push(r);
        } else if idx == 0 {
            // No k-root record before the boot: the pruning contract keeps
            // the newest record ≤ any future boot, so an empty left side
            // here means there genuinely was none.
            self.resolved.push((r, None));
        } else {
            self.resolved.push((r, Some((self.window[idx - 1], self.window[idx]))));
        }
    }

    /// Drops retained k-root timestamps `≤ bound` except the newest such.
    /// Only call with a `bound` every future reboot is known to boot after
    /// (e.g. the timestamp of an uptime record already fed to the reboot
    /// detector).
    pub fn prune(&mut self, bound: SimTime) {
        while self.window.len() >= 2 && self.window[1] <= bound {
            self.window.pop_front();
        }
    }

    /// Resolves still-pending reboots (no right bracket → `None`) and
    /// returns all `(reboot, bracket)` pairs in reboot order.
    pub fn finish(mut self) -> Vec<(Reboot, DarkBracket)> {
        for r in self.pending.drain(..) {
            self.resolved.push((r, None));
        }
        self.resolved
    }
}

/// Applies the §3.6 power-outage rule to one bracketed reboot: the dark
/// window must span at least two measurement rounds (a round is missing) and
/// must not overlap a *network* outage (priority ordering).
pub fn classify_bracket(
    reboot: &Reboot,
    bracket: DarkBracket,
    network: &[NetworkOutage],
) -> Option<PowerOutage> {
    let (dark_start, dark_end) = bracket?;
    if (dark_end - dark_start).secs() < 2 * KROOT_GRID_SECS {
        return None; // no missing rounds: not a power outage
    }
    let overlaps_network =
        network.iter().any(|n| n.end >= dark_start && n.start <= dark_end);
    if overlaps_network {
        return None;
    }
    Some(PowerOutage {
        probe: reboot.probe,
        boot_time: reboot.boot_time,
        dark_start,
        dark_end,
    })
}

/// Classifies reboots into power outages using the k-root record stream.
///
/// A reboot is a power outage when the k-root rounds around the boot show a
/// dark period: the gap between the bracketing records spans at least two
/// measurement rounds (i.e., at least one round is missing), and the records
/// inside the gap (there are none, by construction of the brackets) did not
/// already mark it as a *network* outage. Batch driver over
/// [`KrootBracketer`] + [`classify_bracket`].
pub fn detect_power_outages(
    reboots: &[Reboot],
    kroot: &[KrootPingRecord],
    network: &[NetworkOutage],
) -> Vec<PowerOutage> {
    let mut m = KrootBracketer::new();
    let mut ki = 0;
    for reboot in reboots {
        while ki < kroot.len() && kroot[ki].timestamp <= reboot.report_time {
            m.push_kroot(kroot[ki].timestamp);
            ki += 1;
        }
        m.push_reboot(*reboot);
        m.prune(reboot.report_time);
    }
    for rec in &kroot[ki..] {
        m.push_kroot(rec.timestamp);
    }
    m.finish()
        .into_iter()
        .filter_map(|(r, bracket)| classify_bracket(&r, bracket, network))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: i64, success: u8, lts: i64) -> KrootPingRecord {
        KrootPingRecord {
            probe: ProbeId(16893),
            timestamp: SimTime(ts),
            sent: 3,
            success,
            lts_secs: lts,
        }
    }

    fn sos(ts: i64, uptime: u64) -> SosUptimeRecord {
        SosUptimeRecord { probe: ProbeId(206), timestamp: SimTime(ts), uptime_secs: uptime }
    }

    #[test]
    fn paper_table3_example() {
        // Table 3: outage from 09:05:48 to 09:21:40 (offsets in seconds).
        let records = vec![
            rec(0, 3, 86),
            rec(246, 0, 151),
            rec(483, 0, 388),
            rec(714, 0, 619),
            rec(967, 0, 872),
            rec(1198, 0, 1103),
            rec(1437, 3, 1342),
            rec(1674, 3, 146),
        ];
        let outages = detect_network_outages(&records);
        assert_eq!(outages.len(), 1);
        assert_eq!(outages[0].start, SimTime(246));
        assert_eq!(outages[0].end, SimTime(1198));
        assert_eq!(outages[0].duration(), SimDuration::from_secs(952));
    }

    #[test]
    fn loss_without_growing_lts_is_not_an_outage() {
        // Lost pings but the probe kept syncing its clock: k-root itself had
        // trouble, not the probe's network.
        let records = vec![rec(0, 3, 100), rec(240, 0, 90), rec(480, 0, 85), rec(720, 3, 95)];
        assert!(detect_network_outages(&records).is_empty());
    }

    #[test]
    fn single_lost_round_with_high_lts_detected() {
        let records = vec![rec(0, 3, 100), rec(240, 0, 340), rec(480, 3, 60)];
        let outages = detect_network_outages(&records);
        assert_eq!(outages.len(), 1);
        assert_eq!(outages[0].start, outages[0].end);
    }

    #[test]
    fn single_lost_round_with_low_lts_ignored() {
        let records = vec![rec(0, 3, 100), rec(240, 0, 120), rec(480, 3, 60)];
        assert!(detect_network_outages(&records).is_empty());
    }

    #[test]
    fn back_to_back_outages_split_by_success() {
        let records = vec![
            rec(0, 3, 50),
            rec(240, 0, 290),
            rec(480, 0, 530),
            rec(720, 3, 40),
            rec(960, 0, 280),
            rec(1200, 3, 30),
        ];
        let outages = detect_network_outages(&records);
        assert_eq!(outages.len(), 2);
    }

    #[test]
    fn reboot_detection_matches_table4() {
        // Table 4: 315,038 s of uptime, then a 19 s record → boot 19 s
        // before its timestamp.
        let records = vec![sos(0, 262_531), sos(52_508, 315_038), sos(52_537, 19)];
        let reboots = detect_reboots(&records);
        assert_eq!(reboots.len(), 1);
        assert_eq!(reboots[0].boot_time, SimTime(52_537 - 19));
    }

    #[test]
    fn growing_uptime_is_not_a_reboot() {
        let records = vec![sos(0, 100), sos(1_000, 1_100), sos(5_000, 5_100)];
        assert!(detect_reboots(&records).is_empty());
    }

    #[test]
    fn power_outage_requires_missing_rounds() {
        let reboot = Reboot {
            probe: ProbeId(1),
            boot_time: SimTime(1_000),
            report_time: SimTime(1_060),
        };
        // Dark period: records at 240 and 1_200 bracket the boot (4 rounds
        // missing).
        let kroot = vec![rec(0, 3, 50), rec(240, 3, 60), rec(1_200, 3, 70)];
        let power = detect_power_outages(&[reboot], &kroot, &[]);
        assert_eq!(power.len(), 1);
        assert_eq!(power[0].dark_start, SimTime(240));
        assert_eq!(power[0].dark_end, SimTime(1_200));
        assert_eq!(power[0].duration(), SimDuration::from_secs(960));

        // Same reboot with a complete ping grid: no power outage.
        let dense: Vec<KrootPingRecord> =
            (0..8).map(|i| rec(i * 240, 3, 50 + i)).collect();
        assert!(detect_power_outages(&[reboot], &dense, &[]).is_empty());
    }

    #[test]
    fn network_outage_takes_priority_over_power() {
        let reboot = Reboot {
            probe: ProbeId(1),
            boot_time: SimTime(1_000),
            report_time: SimTime(1_100),
        };
        let kroot = vec![rec(0, 3, 50), rec(240, 3, 60), rec(1_200, 3, 70)];
        let network = vec![NetworkOutage {
            probe: ProbeId(1),
            start: SimTime(400),
            end: SimTime(900),
        }];
        assert!(detect_power_outages(&[reboot], &kroot, &network).is_empty());
    }

    #[test]
    fn empty_inputs() {
        assert!(detect_network_outages(&[]).is_empty());
        assert!(detect_reboots(&[]).is_empty());
        assert!(detect_power_outages(&[], &[], &[]).is_empty());
    }
}
