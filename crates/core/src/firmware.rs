//! Firmware-update reboot filtering (§5.2, Fig. 6).
//!
//! RIPE Atlas pushes firmware updates to all probes at once; each probe
//! reboots to install the update when its controller connection next
//! breaks. These reboots are *effects* of connection breaks, not causes, so
//! they must not count as power outages. The paper identifies update days
//! as spikes in the daily count of unique rebooting probes (more than twice
//! the median for at least two consecutive days) and discards the first
//! reboot of each probe after each update day.

use crate::outages::Reboot;
use crate::stats::median_usize;
use dynaddr_types::time::DAY;
use dynaddr_types::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashSet};

/// Daily reboot counts plus the detected update days — the data behind
/// Fig. 6.
#[derive(Debug, Clone)]
pub struct RebootSeries {
    /// Unique probes that rebooted on each day of the year (index = day).
    pub daily_unique_probes: Vec<usize>,
    /// Median of the daily counts.
    pub median: f64,
    /// First day of each detected spike period (the inferred update dates).
    pub update_days: Vec<i64>,
}

/// Spike multiplier over the median (paper: "more than twice the median").
pub const SPIKE_FACTOR: f64 = 2.0;
/// Minimum consecutive spike days (paper: "at least two consecutive days").
pub const SPIKE_MIN_RUN: usize = 2;

/// Builds the Fig. 6 series and detects firmware-update days.
pub fn reboot_series(reboots: &[Reboot]) -> RebootSeries {
    let mut daily: Vec<HashSet<u32>> = vec![HashSet::new(); 365];
    for r in reboots {
        let day = r.boot_time.day_of_year();
        if (0..365).contains(&day) {
            daily[day as usize].insert(r.probe.0);
        }
    }
    let daily_unique_probes: Vec<usize> = daily.iter().map(|s| s.len()).collect();
    let median = median_usize(&daily_unique_probes).unwrap_or(0.0);

    // Maximal runs of days exceeding twice the median, at least two long.
    let threshold = SPIKE_FACTOR * median;
    let mut update_days = Vec::new();
    let mut run_start: Option<usize> = None;
    for day in 0..=daily_unique_probes.len() {
        let spiking = day < daily_unique_probes.len()
            && median > 0.0
            && daily_unique_probes[day] as f64 > threshold;
        match (spiking, run_start) {
            (true, None) => run_start = Some(day),
            (false, Some(start)) => {
                if day - start >= SPIKE_MIN_RUN {
                    update_days.push(start as i64);
                }
                run_start = None;
            }
            _ => {}
        }
    }
    RebootSeries { daily_unique_probes, median, update_days }
}

/// Removes, for each probe, its first reboot at or after each update day
/// (within a grace window — updates stagger over a day or two).
pub fn strip_firmware_reboots(reboots: &[Reboot], update_days: &[i64]) -> Vec<Reboot> {
    let window = SimDuration::from_days(3);
    // For each probe, the reboot indices to discard.
    let mut discard: HashSet<usize> = HashSet::new();
    let mut by_probe: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, r) in reboots.iter().enumerate() {
        by_probe.entry(r.probe.0).or_default().push(i);
    }
    for indices in by_probe.values() {
        for &day in update_days {
            let day_start = SimTime(day * DAY);
            let first = indices.iter().copied().find(|&i| {
                let t = reboots[i].boot_time;
                t >= day_start && t - day_start <= window && !discard.contains(&i)
            });
            if let Some(i) = first {
                discard.insert(i);
            }
        }
    }
    reboots
        .iter()
        .enumerate()
        .filter(|(i, _)| !discard.contains(i))
        .map(|(_, r)| *r)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynaddr_types::ProbeId;

    fn reboot(probe: u32, day: i64, secs: i64) -> Reboot {
        Reboot {
            probe: ProbeId(probe),
            boot_time: SimTime(day * DAY + secs),
            report_time: SimTime(day * DAY + secs + 60),
        }
    }

    /// Background: one reboot per day from rotating probes; spikes on two
    /// consecutive days where many probes reboot.
    fn synthetic(spike_days: &[i64]) -> Vec<Reboot> {
        let mut v = Vec::new();
        for day in 0..365 {
            v.push(reboot(1_000 + (day % 50) as u32, day, 3_600));
            v.push(reboot(2_000 + (day % 50) as u32, day, 7_200));
        }
        for &d in spike_days {
            for probe in 0..40u32 {
                v.push(reboot(probe, d, 1_800 + i64::from(probe)));
                v.push(reboot(probe, d + 1, 1_800 + i64::from(probe)));
            }
        }
        v
    }

    #[test]
    fn detects_spike_runs() {
        let reboots = synthetic(&[100, 250]);
        let series = reboot_series(&reboots);
        assert_eq!(series.median, 2.0);
        assert_eq!(series.update_days, vec![100, 250]);
        assert_eq!(series.daily_unique_probes[100], 42);
        assert_eq!(series.daily_unique_probes[99], 2);
    }

    #[test]
    fn single_day_spike_ignored() {
        let mut reboots = synthetic(&[]);
        for probe in 0..40u32 {
            reboots.push(reboot(probe, 180, 900));
        }
        let series = reboot_series(&reboots);
        assert!(series.update_days.is_empty(), "{:?}", series.update_days);
    }

    #[test]
    fn strip_removes_one_reboot_per_probe_per_update() {
        let reboots = synthetic(&[100]);
        let series = reboot_series(&reboots);
        let stripped = strip_firmware_reboots(&reboots, &series.update_days);
        // Each of the 40 spike probes loses exactly one reboot (its first
        // after day 100); the second spike-day reboot survives.
        let spike_before = reboots.iter().filter(|r| r.probe.0 < 40).count();
        let spike_after = stripped.iter().filter(|r| r.probe.0 < 40).count();
        assert_eq!(spike_before - spike_after, 40);
        // Background probes outside the window keep everything.
        let background_before =
            reboots.iter().filter(|r| r.probe.0 >= 1_000).count();
        let background_after =
            stripped.iter().filter(|r| r.probe.0 >= 1_000).count();
        // Background probes that happened to reboot on day 100/101 also get
        // one stripped — that is the paper's behaviour too (it cannot tell
        // which reboot was firmware-caused).
        assert!(background_before - background_after <= 8);
    }

    #[test]
    fn out_of_year_reboots_ignored_in_series() {
        let series = reboot_series(&[reboot(1, -3, 0), reboot(1, 400, 0)]);
        assert_eq!(series.daily_unique_probes.iter().sum::<usize>(), 0);
    }

    #[test]
    fn empty_input() {
        let series = reboot_series(&[]);
        assert_eq!(series.median, 0.0);
        assert!(series.update_days.is_empty());
        assert!(strip_firmware_reboots(&[], &[10]).is_empty());
    }
}
