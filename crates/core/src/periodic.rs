//! Periodic-renumbering classification (§4.4, Table 5).
//!
//! A probe is *periodic at d* when its total time fraction at some duration
//! cluster `d` exceeds 0.25 — lenient enough that outage-shortened and
//! harmonic-lengthened periods don't hide the plan. Per (AS, d) pair we then
//! compute the paper's Table 5 columns: how many probes are periodic, how
//! persistently (f > 0.5, f > 0.75), whether their maximum duration respects
//! the period (MAX ≤ d, with 5% slack), and whether overruns land on
//! harmonic multiples of d.

use crate::filtering::AnalyzableProbe;
use crate::ttf::{dominant_cluster, DurationCluster};
use dynaddr_types::{Asn, SimDuration};
use serde::Serialize;
use std::collections::BTreeMap;

/// Thresholds and minimum population sizes for the Table 5 computation.
#[derive(Debug, Clone)]
pub struct PeriodicConfig {
    /// Relative clustering tolerance (paper: d + 5%).
    pub tolerance: f64,
    /// Total-time-fraction threshold to call a probe periodic (paper: 0.25).
    pub threshold: f64,
    /// Minimum probes with an address change for an AS to be tabulated
    /// (the paper says 5 but its own Table 5 includes a 4-probe AS, Digi
    /// Tavkozlesi; we use 4).
    pub min_probes: usize,
    /// Minimum periodic probes for a (AS, d) row (paper: 3).
    pub min_periodic: usize,
    /// Minimum durations in the dominant cluster for a probe to count as
    /// periodic. A stable probe with two long, near-equal durations would
    /// otherwise trivially exceed the 0.25 time fraction; a genuinely
    /// periodic plan produces dozens of near-d durations per year.
    pub min_cluster_count: usize,
}

impl Default for PeriodicConfig {
    fn default() -> PeriodicConfig {
        PeriodicConfig {
            tolerance: 0.05,
            threshold: 0.25,
            min_probes: 4,
            min_periodic: 3,
            min_cluster_count: 3,
        }
    }
}

/// Per-probe periodicity verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbePeriodicity {
    /// Dominant duration cluster, if the probe yielded any durations.
    pub dominant: Option<DurationCluster>,
    /// Number of measured durations.
    pub n_durations: usize,
    /// Longest measured duration.
    pub max_duration: SimDuration,
}

impl ProbePeriodicity {
    /// Whether the probe is periodic under the given threshold.
    pub fn is_periodic(&self, threshold: f64) -> bool {
        self.dominant.as_ref().map(|c| c.fraction > threshold).unwrap_or(false)
    }

    /// The detected period in hours, when periodic.
    pub fn period_hours(&self, threshold: f64) -> Option<i64> {
        self.dominant
            .as_ref()
            .filter(|c| c.fraction > threshold)
            .map(|c| c.d_hours())
    }
}

/// Classifies one probe's durations.
pub fn classify_probe(durations: &[SimDuration], tolerance: f64) -> ProbePeriodicity {
    ProbePeriodicity {
        dominant: dominant_cluster(durations, tolerance),
        n_durations: durations.iter().filter(|d| d.secs() > 0).count(),
        max_duration: durations.iter().copied().max().unwrap_or(SimDuration::ZERO),
    }
}

/// Whether every duration is at or below d (with slack) or lands on a
/// harmonic multiple of d — the paper's "Harmonic" column.
pub fn is_harmonic(durations: &[SimDuration], d_hours: i64, tol: f64) -> bool {
    let d = d_hours as f64 * 3_600.0;
    durations.iter().all(|dur| {
        let s = dur.secs() as f64;
        if s <= d * (1.0 + tol) {
            return true;
        }
        let k = (s / d).round().max(2.0);
        (s - k * d).abs() <= tol * k * d
    })
}

/// Whether no duration exceeds d (with 5%-style slack) — "MAX ≤ d".
pub fn max_le_d(max_duration: SimDuration, d_hours: i64, tol: f64) -> bool {
    (max_duration.secs() as f64) <= d_hours as f64 * 3_600.0 * (1.0 + tol)
}

/// One row of Table 5 (an (AS, d) pair, or the "All" aggregate rows).
#[derive(Debug, Clone, Serialize)]
pub struct Table5Row {
    /// ISP display name ("All" for aggregates).
    pub name: String,
    /// ASN (0 for aggregates).
    pub asn: u32,
    /// Country code, when uniform across probes.
    pub country: String,
    /// The period d in hours.
    pub d_hours: i64,
    /// Probes in the AS with at least one measured duration.
    pub n: usize,
    /// Probes with total time fraction at d greater than the threshold.
    pub fp25: usize,
    /// Of those, percentage with fraction > 0.5.
    pub pct_fp50: f64,
    /// Of those, percentage with fraction > 0.75.
    pub pct_fp75: f64,
    /// Percentage of periodic probes whose max duration ≤ d (+5%).
    pub pct_max_le_d: f64,
    /// Percentage of periodic probes whose overruns are harmonic.
    pub pct_harmonic: f64,
}

/// Computes per-probe periodicity for every AS-analyzable probe, then folds
/// into Table 5 rows. Returns `(rows, per-probe verdicts)`; rows are sorted
/// by decreasing `fp25` like the paper, with the "All" rows first.
pub fn table5(
    probes: &[AnalyzableProbe],
    names: &BTreeMap<u32, String>,
    cfg: &PeriodicConfig,
) -> (Vec<Table5Row>, Vec<(Asn, ProbePeriodicity)>) {
    // Per-probe verdicts over the AS-level population. Duration extraction
    // and clustering are independent per probe; fan out and keep the
    // verdicts in probe order.
    let verdicts: Vec<(Asn, ProbePeriodicity, Vec<SimDuration>)> =
        dynaddr_exec::par_map_flat(probes, |p| {
            if p.multi_as {
                return Vec::new();
            }
            let durations = p.same_as_durations();
            if durations.is_empty() {
                return Vec::new();
            }
            let verdict = classify_probe(&durations, cfg.tolerance);
            vec![(p.primary_asn, verdict, durations)]
        });

    // Group by (asn, d) for periodic probes; count N per asn.
    let mut n_by_asn: BTreeMap<u32, usize> = BTreeMap::new();
    for (asn, _, _) in &verdicts {
        *n_by_asn.entry(asn.0).or_insert(0) += 1;
    }
    #[derive(Default)]
    struct Acc {
        fp25: usize,
        fp50: usize,
        fp75: usize,
        max_le: usize,
        harmonic: usize,
    }
    let mut rows_acc: BTreeMap<(u32, i64), Acc> = BTreeMap::new();
    let mut all_acc: BTreeMap<i64, Acc> = BTreeMap::new();

    // Canonicalize near-identical periods across probes of one AS: probes on
    // the same plan can straddle a rounding boundary (167.4 h vs 167.6 h on
    // a one-week plan). Snap each probe's d to the most common d within 2%
    // among its AS peers.
    let mut d_votes: BTreeMap<u32, BTreeMap<i64, usize>> = BTreeMap::new();
    for (asn, verdict, _) in &verdicts {
        let big_enough = verdict
            .dominant
            .as_ref()
            .map(|c| c.count >= cfg.min_cluster_count)
            .unwrap_or(false);
        if !big_enough {
            continue;
        }
        if let Some(d) = verdict.period_hours(cfg.threshold) {
            *d_votes.entry(asn.0).or_default().entry(d).or_insert(0) += 1;
        }
    }
    let snap_d = |asn: u32, d: i64| -> i64 {
        let Some(votes) = d_votes.get(&asn) else { return d };
        let slack = (d / 50).max(1);
        votes
            .range((d - slack)..=(d + slack))
            .max_by_key(|(cand, n)| (**n, std::cmp::Reverse(**cand)))
            .map(|(cand, _)| *cand)
            .unwrap_or(d)
    };

    for (asn, verdict, durations) in &verdicts {
        let Some(d) = verdict.period_hours(cfg.threshold) else { continue };
        if verdict
            .dominant
            .as_ref()
            .map(|c| c.count < cfg.min_cluster_count)
            .unwrap_or(true)
        {
            continue;
        }
        let d = snap_d(asn.0, d);
        let f = verdict.dominant.as_ref().expect("periodic implies cluster").fraction;
        for acc in [
            rows_acc.entry((asn.0, d)).or_default(),
            all_acc.entry(d).or_default(),
        ] {
            acc.fp25 += 1;
            if f > 0.5 {
                acc.fp50 += 1;
            }
            if f > 0.75 {
                acc.fp75 += 1;
            }
            if max_le_d(verdict.max_duration, d, cfg.tolerance) {
                acc.max_le += 1;
            }
            if is_harmonic(durations, d, cfg.tolerance) {
                acc.harmonic += 1;
            }
        }
    }

    let pct = |num: usize, den: usize| {
        if den == 0 {
            0.0
        } else {
            100.0 * num as f64 / den as f64
        }
    };
    let total_n = verdicts.len();
    let mut rows: Vec<Table5Row> = Vec::new();
    // "All" aggregate rows for the two headline periods.
    for d in [24i64, 168] {
        if let Some(acc) = all_acc.get(&d) {
            rows.push(Table5Row {
                name: "All".to_string(),
                asn: 0,
                country: String::new(),
                d_hours: d,
                n: total_n,
                fp25: acc.fp25,
                pct_fp50: pct(acc.fp50, acc.fp25),
                pct_fp75: pct(acc.fp75, acc.fp25),
                pct_max_le_d: pct(acc.max_le, acc.fp25),
                pct_harmonic: pct(acc.harmonic, acc.fp25),
            });
        }
    }
    let mut as_rows: Vec<Table5Row> = rows_acc
        .into_iter()
        .filter(|((asn, _), acc)| {
            n_by_asn.get(asn).copied().unwrap_or(0) >= cfg.min_probes
                && acc.fp25 >= cfg.min_periodic
        })
        .map(|((asn, d), acc)| Table5Row {
            name: names.get(&asn).cloned().unwrap_or_else(|| format!("AS{asn}")),
            asn,
            country: String::new(),
            d_hours: d,
            n: n_by_asn[&asn],
            fp25: acc.fp25,
            pct_fp50: pct(acc.fp50, acc.fp25),
            pct_fp75: pct(acc.fp75, acc.fp25),
            pct_max_le_d: pct(acc.max_le, acc.fp25),
            pct_harmonic: pct(acc.harmonic, acc.fp25),
        })
        .collect();
    as_rows.sort_by(|a, b| b.fp25.cmp(&a.fp25).then(a.asn.cmp(&b.asn)));
    rows.extend(as_rows);

    let verdict_list = verdicts.into_iter().map(|(asn, v, _)| (asn, v)).collect();
    (rows, verdict_list)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(hours: f64) -> SimDuration {
        SimDuration::from_hours_f64(hours)
    }

    #[test]
    fn classify_periodic_probe() {
        let ds: Vec<SimDuration> =
            (0..30).map(|_| h(23.7)).chain([h(3.0), h(9.0)]).collect();
        let v = classify_probe(&ds, 0.05);
        assert!(v.is_periodic(0.25));
        assert_eq!(v.period_hours(0.25), Some(24));
        assert!(v.is_periodic(0.75), "fraction should be very high");
    }

    #[test]
    fn classify_stable_probe() {
        // A handful of scattered long durations: dominant cluster exists but
        // is not overwhelming... unless one dominates. Use spread-out values.
        let ds = vec![h(100.0), h(350.0), h(801.0), h(1201.0)];
        let v = classify_probe(&ds, 0.05);
        // The largest single duration holds <50% of total time; with the
        // 0.25 threshold the probe may technically be "periodic" at its
        // longest duration — the paper's threshold has the same property,
        // which is why Table 5 also requires 3+ probes agreeing on d.
        assert_eq!(v.n_durations, 4);
        assert!(v.max_duration == h(1201.0));
    }

    #[test]
    fn harmonic_accepts_multiples_rejects_offsets() {
        let base: Vec<SimDuration> = vec![h(23.8), h(23.7), h(47.6), h(71.3)];
        assert!(is_harmonic(&base, 24, 0.05));
        let offset = vec![h(23.8), h(31.0)];
        assert!(!is_harmonic(&offset, 24, 0.05));
        // Everything under d is trivially harmonic.
        assert!(is_harmonic(&[h(3.0), h(10.0)], 24, 0.05));
    }

    #[test]
    fn max_le_d_with_slack() {
        assert!(max_le_d(h(24.9), 24, 0.05));
        assert!(!max_le_d(h(25.5), 24, 0.05));
    }

    #[test]
    fn tiny_clusters_do_not_count_as_periodic() {
        // Two near-equal long durations dominate total time but are not a
        // periodic plan.
        let cfg = PeriodicConfig::default();
        let ds = vec![h(700.0), h(710.0), h(100.0)];
        let v = classify_probe(&ds, cfg.tolerance);
        assert!(v.is_periodic(cfg.threshold), "raw threshold alone is fooled");
        assert!(
            v.dominant.as_ref().unwrap().count < cfg.min_cluster_count,
            "the cluster-population guard rejects it"
        );
    }

    #[test]
    fn table5_groups_by_asn_and_period() {
        use dynaddr_atlas::logs::{ConnectionLogEntry, PeerAddr, ProbeMeta};
        use dynaddr_ip2as::{MonthlySnapshots, RouteTable};
        use dynaddr_types::{ProbeId, SimTime};

        // Build two ASes: AS100 with 6 periodic probes at 24 h, AS200 with
        // 5 stable probes, via synthetic connection logs.
        let mut table = RouteTable::new();
        table.announce("10.0.0.0/16".parse().unwrap(), Asn(100));
        table.announce("20.0.0.0/16".parse().unwrap(), Asn(200));
        let snaps = MonthlySnapshots::uniform(table);

        let mut ds = dynaddr_atlas::logs::AtlasDataset::default();
        let hsec = 3_600i64;
        for id in 1..=6u32 {
            ds.meta.push(ProbeMeta { probe: ProbeId(id), ..ProbeMeta::default() });
            // 40 connections, address changes daily.
            for k in 0..40i64 {
                ds.connections.push(ConnectionLogEntry {
                    probe: ProbeId(id),
                    start: SimTime(k * 24 * hsec),
                    end: SimTime(k * 24 * hsec + 23 * hsec + 3_540),
                    peer: PeerAddr::V4(
                        format!("10.0.{}.{}", id, k + 1).parse().unwrap(),
                    ),
                });
            }
        }
        for id in 11..=15u32 {
            ds.meta.push(ProbeMeta { probe: ProbeId(id), ..ProbeMeta::default() });
            // Stable probes: few, irregular, per-probe-distinct durations so
            // no three probes agree on a period.
            for k in 0..4i64 {
                let hold = 1_500 + 211 * i64::from(id) + 137 * k;
                ds.connections.push(ConnectionLogEntry {
                    probe: ProbeId(id),
                    start: SimTime(k * 2_000 * hsec),
                    end: SimTime((k * 2_000 + hold) * hsec),
                    peer: PeerAddr::V4(format!("20.0.{}.{}", id, k + 1).parse().unwrap()),
                });
            }
        }
        ds.normalize();
        let report = crate::filtering::filter_probes(&ds, &snaps);
        assert_eq!(report.counts.analyzable_geo, 11);

        let mut names = BTreeMap::new();
        names.insert(100u32, "PeriodicNet".to_string());
        names.insert(200u32, "StableNet".to_string());
        let (rows, verdicts) = table5(&report.probes, &names, &PeriodicConfig::default());

        let periodic_row = rows
            .iter()
            .find(|r| r.asn == 100)
            .expect("AS100 row present");
        assert_eq!(periodic_row.d_hours, 24);
        assert_eq!(periodic_row.n, 6);
        assert_eq!(periodic_row.fp25, 6);
        assert!(periodic_row.pct_fp75 > 99.0);
        assert!(periodic_row.pct_max_le_d > 99.0);
        assert!(periodic_row.pct_harmonic > 99.0);
        assert!(
            !rows.iter().any(|r| r.asn == 200),
            "StableNet must not appear periodic: {rows:?}"
        );
        // "All" row at 24 h present and counts the same 6 probes.
        let all24 = rows.iter().find(|r| r.name == "All" && r.d_hours == 24).unwrap();
        assert_eq!(all24.fp25, 6);
        assert_eq!(all24.n, verdicts.len());
    }
}
