//! Address-set churn estimation (§8's closing discussion).
//!
//! The paper closes by relating its per-device view to Richter et al.'s
//! CDN-side observation that *"the set of addresses observed at a large CDN
//! on one day differs from the set of addresses observed on the next day by
//! 8% on average."* This module computes the same statistic from the
//! vantage of connection logs: the set of distinct IPv4 addresses active on
//! each day, and how much consecutive days' sets differ — decomposable per
//! AS, so periodic renumberers (near-total daily turnover) can be contrasted
//! with stable plants (near-zero).

use crate::filtering::AnalyzableProbe;
use dynaddr_types::time::{DAY, DAYS_IN_2015};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Day-over-day churn of the active address set.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ChurnSeries {
    /// Distinct active addresses per day of the year.
    pub daily_active: Vec<usize>,
    /// For each consecutive day pair `(d, d+1)`: fraction of day-`d`
    /// addresses *not* seen on day `d+1`. `None` when either day saw no
    /// addresses at all — an empty day marks the edge of observation, not
    /// churn.
    pub daily_churn: Vec<Option<f64>>,
}

impl ChurnSeries {
    /// Mean daily churn over days with data.
    pub fn mean_churn(&self) -> Option<f64> {
        let vals: Vec<f64> = self.daily_churn.iter().flatten().copied().collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

/// Which days (0-based, within 2015) a connection entry spans.
fn days_of(start: i64, end: i64) -> impl Iterator<Item = i64> {
    let first = start.div_euclid(DAY).max(0);
    let last = end.div_euclid(DAY).min(DAYS_IN_2015 - 1);
    first..=last
}

/// Computes the churn series over a set of probes, optionally restricted to
/// one AS (`None` = all probes; multi-AS probes contribute everywhere their
/// addresses are observed).
pub fn churn_series(probes: &[AnalyzableProbe], asn: Option<u32>) -> ChurnSeries {
    let mut per_day: Vec<BTreeSet<Ipv4Addr>> = vec![BTreeSet::new(); DAYS_IN_2015 as usize];
    for p in probes {
        if let Some(asn) = asn {
            if p.multi_as || p.primary_asn.0 != asn {
                continue;
            }
        }
        for e in &p.entries {
            let Some(addr) = e.peer.v4() else { continue };
            for day in days_of(e.start.secs(), e.end.secs()) {
                per_day[day as usize].insert(addr);
            }
        }
    }
    let daily_active: Vec<usize> = per_day.iter().map(|s| s.len()).collect();
    let daily_churn: Vec<Option<f64>> = per_day
        .windows(2)
        .map(|w| {
            if w[0].is_empty() || w[1].is_empty() {
                None
            } else {
                let gone = w[0].difference(&w[1]).count();
                Some(gone as f64 / w[0].len() as f64)
            }
        })
        .collect();
    ChurnSeries { daily_active, daily_churn }
}

/// Per-AS mean daily churn, for ASes with at least `min_probes` probes —
/// the decomposition that explains *where* aggregate churn comes from.
pub fn churn_by_as(probes: &[AnalyzableProbe], min_probes: usize) -> BTreeMap<u32, f64> {
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for p in probes {
        if !p.multi_as {
            *counts.entry(p.primary_asn.0).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .filter(|(_, n)| *n >= min_probes)
        .filter_map(|(asn, _)| {
            churn_series(probes, Some(asn))
                .mean_churn()
                .map(|c| (asn, c))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynaddr_atlas::logs::{AtlasDataset, ConnectionLogEntry, PeerAddr, ProbeMeta};
    use dynaddr_ip2as::{MonthlySnapshots, RouteTable};
    use dynaddr_types::{Asn, ProbeId, SimTime};

    const H: i64 = 3_600;

    fn build(daily_change: bool, n_probes: u32) -> Vec<AnalyzableProbe> {
        let mut table = RouteTable::new();
        table.announce("10.0.0.0/16".parse().unwrap(), Asn(100));
        let snaps = MonthlySnapshots::uniform(table);
        let mut ds = AtlasDataset::default();
        for id in 1..=n_probes {
            ds.meta.push(ProbeMeta { probe: ProbeId(id), ..ProbeMeta::default() });
            for day in 0..60i64 {
                let addr = if daily_change {
                    format!("10.0.{}.{}", id, (day % 200) + 1)
                } else if day == 30 {
                    // One change mid-window so the probe stays analyzable.
                    format!("10.0.{}.200", id)
                } else if day > 30 {
                    format!("10.0.{}.200", id)
                } else {
                    format!("10.0.{}.1", id)
                };
                ds.connections.push(ConnectionLogEntry {
                    probe: ProbeId(id),
                    start: SimTime(day * DAY + 60),
                    end: SimTime(day * DAY + 23 * H),
                    peer: PeerAddr::V4(addr.parse().unwrap()),
                });
            }
        }
        ds.normalize();
        crate::filtering::filter_probes(&ds, &snaps).probes
    }

    #[test]
    fn daily_renumbering_means_total_turnover() {
        let probes = build(true, 4);
        let series = churn_series(&probes, None);
        assert_eq!(series.daily_active[0], 4);
        // Every address is replaced every day.
        let mean = series.mean_churn().unwrap();
        assert!(mean > 0.95, "mean churn {mean}");
    }

    #[test]
    fn stable_plant_means_near_zero_churn() {
        let probes = build(false, 4);
        let series = churn_series(&probes, None);
        let mean = series.mean_churn().unwrap();
        assert!(mean < 0.05, "mean churn {mean}");
        // The single mid-window change is visible as one non-zero day.
        let nonzero = series
            .daily_churn
            .iter()
            .flatten()
            .filter(|c| **c > 0.0)
            .count();
        assert_eq!(nonzero, 1);
    }

    #[test]
    fn per_as_decomposition() {
        let probes = build(true, 5);
        let by_as = churn_by_as(&probes, 3);
        assert_eq!(by_as.len(), 1);
        assert!(by_as[&100] > 0.95);
        // Raising the probe threshold excludes the AS.
        assert!(churn_by_as(&probes, 10).is_empty());
    }

    #[test]
    fn multi_day_entries_count_on_every_day() {
        // A connection spanning several days keeps its address active on
        // each of them; out-of-year spans clip to the year.
        let days: Vec<i64> = days_of(0, 2 * DAY + 3 * H).collect();
        assert_eq!(days, vec![0, 1, 2]);
        let clipped: Vec<i64> = days_of(-5 * DAY, DAY).collect();
        assert_eq!(clipped, vec![0, 1]);
    }
}
