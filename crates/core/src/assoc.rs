//! Associating outages with inter-connection gaps and address changes
//! (§3.6, §5.3–5.4; Figs. 7–9, Table 6).
//!
//! For every detected outage we find the inter-connection gap it overlaps
//! (with a small slack, since outage timestamps quantize to the 4-minute
//! k-root grid). The outage "caused" an address change when that gap's
//! addresses differ. Per probe we then estimate `P(ac | nw)` and
//! `P(ac | pw)` as the fraction of outages contemporaneous with a change.

use crate::changes::Gap;
use crate::outages::{NetworkOutage, PowerOutage};
use dynaddr_types::{ProbeId, SimDuration, SimTime};
use serde::Serialize;

/// Slack when matching outages to gaps (one k-root round each side).
pub const MATCH_SLACK: SimDuration = SimDuration(300);

/// Outage kind after association.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum OutageKind {
    /// Lost pings with growing LTS.
    Network,
    /// Reboot with missing pings.
    Power,
}

/// One outage with its association outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssociatedOutage {
    /// The probe.
    pub probe: ProbeId,
    /// Network or power.
    pub kind: OutageKind,
    /// Outage start (detection timestamp).
    pub start: SimTime,
    /// Measured/estimated duration.
    pub duration: SimDuration,
    /// Whether an address change is contemporaneous with the outage.
    pub address_changed: bool,
}

/// Matches an interval against a probe's gaps; returns whether any
/// overlapping gap changed addresses.
fn interval_changed(gaps: &[Gap], start: SimTime, end: SimTime) -> bool {
    gaps.iter().any(|g| {
        g.address_changed
            && end + MATCH_SLACK >= g.start
            && start <= g.end + MATCH_SLACK
    })
}

/// Associates a probe's network outages with its gaps.
pub fn associate_network(gaps: &[Gap], outages: &[NetworkOutage]) -> Vec<AssociatedOutage> {
    outages
        .iter()
        .map(|o| AssociatedOutage {
            probe: o.probe,
            kind: OutageKind::Network,
            start: o.start,
            duration: o.duration(),
            address_changed: interval_changed(gaps, o.start, o.end),
        })
        .collect()
}

/// Associates a probe's power outages with its gaps.
pub fn associate_power(gaps: &[Gap], outages: &[PowerOutage]) -> Vec<AssociatedOutage> {
    outages
        .iter()
        .map(|o| AssociatedOutage {
            probe: o.probe,
            kind: OutageKind::Power,
            start: o.dark_start,
            duration: o.duration(),
            address_changed: interval_changed(gaps, o.dark_start, o.dark_end),
        })
        .collect()
}

/// Per-probe conditional probability of address change given an outage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CondProb {
    /// The probe.
    pub probe: ProbeId,
    /// Number of outages of the kind.
    pub outages: usize,
    /// Number coincident with an address change.
    pub changed: usize,
}

impl CondProb {
    /// The estimated probability.
    pub fn p(&self) -> f64 {
        if self.outages == 0 {
            0.0
        } else {
            self.changed as f64 / self.outages as f64
        }
    }
}

/// Folds associated outages of one probe and kind into a [`CondProb`].
pub fn cond_prob(probe: ProbeId, outages: &[AssociatedOutage], kind: OutageKind) -> CondProb {
    let of_kind: Vec<&AssociatedOutage> =
        outages.iter().filter(|o| o.kind == kind && o.probe == probe).collect();
    CondProb {
        probe,
        outages: of_kind.len(),
        changed: of_kind.iter().filter(|o| o.address_changed).count(),
    }
}

/// The Fig. 9 outage-duration buckets.
pub const DURATION_BUCKETS: [(&str, i64, i64); 12] = [
    ("<5m", 0, 300),
    ("5-10m", 300, 600),
    ("10-20m", 600, 1_200),
    ("20-30m", 1_200, 1_800),
    ("30-60m", 1_800, 3_600),
    ("1-3h", 3_600, 3 * 3_600),
    ("3-6h", 3 * 3_600, 6 * 3_600),
    ("6-12h", 6 * 3_600, 12 * 3_600),
    ("12-24h", 12 * 3_600, 24 * 3_600),
    ("1-3d", 24 * 3_600, 3 * 86_400),
    ("3d-7d", 3 * 86_400, 7 * 86_400),
    (">1w", 7 * 86_400, i64::MAX),
];

/// Renumbering-by-duration histogram for one AS (one Fig. 9 panel).
#[derive(Debug, Clone, Serialize)]
pub struct DurationBuckets {
    /// Outages per bucket.
    pub total: [usize; 12],
    /// Of those, outages with an address change.
    pub renumbered: [usize; 12],
}

impl DurationBuckets {
    /// Buckets a set of associated outages.
    pub fn build(outages: &[AssociatedOutage]) -> DurationBuckets {
        let mut b = DurationBuckets { total: [0; 12], renumbered: [0; 12] };
        for o in outages {
            let secs = o.duration.secs().max(0);
            let idx = DURATION_BUCKETS
                .iter()
                .position(|(_, lo, hi)| secs >= *lo && secs < *hi)
                .unwrap_or(11);
            b.total[idx] += 1;
            if o.address_changed {
                b.renumbered[idx] += 1;
            }
        }
        b
    }

    /// Percentage renumbered per bucket (`None` for empty buckets).
    pub fn percentages(&self) -> [Option<f64>; 12] {
        std::array::from_fn(|i| {
            (self.total[i] > 0)
                .then(|| 100.0 * self.renumbered[i] as f64 / self.total[i] as f64)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gap(start: i64, end: i64, changed: bool) -> Gap {
        Gap {
            probe: ProbeId(1),
            start: SimTime(start),
            end: SimTime(end),
            address_changed: changed,
        }
    }

    fn nw(start: i64, end: i64) -> NetworkOutage {
        NetworkOutage { probe: ProbeId(1), start: SimTime(start), end: SimTime(end) }
    }

    #[test]
    fn outage_inside_changing_gap_is_a_change() {
        let gaps = vec![gap(1_000, 3_000, true)];
        let assoc = associate_network(&gaps, &[nw(1_200, 2_500)]);
        assert!(assoc[0].address_changed);
    }

    #[test]
    fn outage_inside_stable_gap_is_not_a_change() {
        let gaps = vec![gap(1_000, 3_000, false)];
        let assoc = associate_network(&gaps, &[nw(1_200, 2_500)]);
        assert!(!assoc[0].address_changed);
    }

    #[test]
    fn outage_far_from_any_gap_is_not_a_change() {
        let gaps = vec![gap(50_000, 51_000, true)];
        let assoc = associate_network(&gaps, &[nw(1_200, 2_000)]);
        assert!(!assoc[0].address_changed);
    }

    #[test]
    fn slack_covers_grid_quantization() {
        // Outage detected slightly after the gap closed (grid alignment).
        let gaps = vec![gap(1_000, 1_100, true)];
        let assoc = associate_network(&gaps, &[nw(1_200, 1_300)]);
        assert!(assoc[0].address_changed, "±300 s slack should match");
        let assoc = associate_network(&gaps, &[nw(1_500, 1_600)]);
        assert!(!assoc[0].address_changed, "beyond slack must not match");
    }

    #[test]
    fn power_association_uses_dark_window() {
        let gaps = vec![gap(900, 2_000, true)];
        let power = vec![PowerOutage {
            probe: ProbeId(1),
            boot_time: SimTime(1_500),
            dark_start: SimTime(960),
            dark_end: SimTime(1_920),
        }];
        let assoc = associate_power(&gaps, &power);
        assert_eq!(assoc[0].kind, OutageKind::Power);
        assert!(assoc[0].address_changed);
        assert_eq!(assoc[0].duration, SimDuration::from_secs(960));
    }

    #[test]
    fn cond_prob_counts() {
        let mk = |changed| AssociatedOutage {
            probe: ProbeId(1),
            kind: OutageKind::Network,
            start: SimTime(0),
            duration: SimDuration::from_mins(5),
            address_changed: changed,
        };
        let outages = vec![mk(true), mk(true), mk(false), mk(true)];
        let cp = cond_prob(ProbeId(1), &outages, OutageKind::Network);
        assert_eq!(cp.outages, 4);
        assert_eq!(cp.changed, 3);
        assert!((cp.p() - 0.75).abs() < 1e-12);
        let none = cond_prob(ProbeId(1), &outages, OutageKind::Power);
        assert_eq!(none.outages, 0);
        assert_eq!(none.p(), 0.0);
    }

    #[test]
    fn buckets_cover_all_durations() {
        let mk = |secs: i64, changed| AssociatedOutage {
            probe: ProbeId(1),
            kind: OutageKind::Network,
            start: SimTime(0),
            duration: SimDuration::from_secs(secs),
            address_changed: changed,
        };
        let outages = vec![
            mk(60, true),           // <5m
            mk(400, false),         // 5-10m
            mk(2 * 3_600, true),    // 1-3h
            mk(20 * 86_400, true),  // >1w
        ];
        let b = DurationBuckets::build(&outages);
        assert_eq!(b.total.iter().sum::<usize>(), 4);
        assert_eq!(b.total[0], 1);
        assert_eq!(b.total[1], 1);
        assert_eq!(b.total[5], 1);
        assert_eq!(b.total[11], 1);
        let pct = b.percentages();
        assert_eq!(pct[0], Some(100.0));
        assert_eq!(pct[1], Some(0.0));
        assert_eq!(pct[2], None);
    }

    #[test]
    fn bucket_labels_are_ordered_and_contiguous() {
        for pair in DURATION_BUCKETS.windows(2) {
            assert_eq!(pair[0].2, pair[1].1, "buckets must be contiguous");
        }
        assert_eq!(DURATION_BUCKETS[0].1, 0);
        assert_eq!(DURATION_BUCKETS[11].2, i64::MAX);
    }
}
