//! Geographic rollups of address durations (§4.2, Figs. 1 and 3).
//!
//! Each rollup is a keyed reduction over independent probes, run through
//! `dynaddr_exec::par_fold`: per-chunk `BTreeMap` accumulators merged key
//! by key with [`TtfDistribution::merge`], whose chunk-order concatenation
//! and left-to-right float totals make the result byte-identical to a
//! sequential build at any worker count (asserted by a test below).

use crate::filtering::AnalyzableProbe;
use crate::ttf::{TtfCurve, TtfDistribution};
use dynaddr_types::{Asn, Continent};
use std::collections::BTreeMap;

/// Merges per-chunk keyed distributions, left chunk first — the shared
/// `par_fold` merge of every rollup in this module.
fn merge_keyed<K: Ord>(
    mut a: BTreeMap<K, TtfDistribution>,
    b: BTreeMap<K, TtfDistribution>,
) -> BTreeMap<K, TtfDistribution> {
    for (k, d) in b {
        match a.entry(k) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(d);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(d),
        }
    }
    a
}

/// Total-time-fraction curve per continent — Fig. 1.
///
/// Multi-AS probes contribute their within-AS durations (the geographic
/// analysis keeps them, §3.3).
pub fn continent_distributions(probes: &[AnalyzableProbe]) -> Vec<(Continent, TtfCurve)> {
    let map: BTreeMap<Continent, TtfDistribution> = dynaddr_exec::par_fold(
        probes.iter().collect(),
        BTreeMap::new,
        |mut map: BTreeMap<Continent, TtfDistribution>, p: &AnalyzableProbe| {
            if let Some(continent) = p.meta.country.continent() {
                map.entry(continent).or_default().extend(p.same_as_durations());
            }
            map
        },
        merge_keyed,
    );
    let mut out: Vec<(Continent, TtfCurve)> =
        map.into_iter().map(|(c, d)| (c, d.finalize())).collect();
    // Paper legend order: by total time, descending.
    out.sort_by(|a, b| {
        b.1.total_years()
            .partial_cmp(&a.1.total_years())
            .expect("finite totals")
    });
    out
}

/// Total-time-fraction curve per AS within one country — Fig. 3
/// (Germany). Only ASes contributing at least `min_years` of total address
/// time are reported, mirroring the paper's 3-year cutoff (scale it down
/// for smaller worlds).
pub fn country_as_distributions(
    probes: &[AnalyzableProbe],
    country_code: &str,
    min_years: f64,
) -> Vec<(Asn, TtfCurve)> {
    let map: BTreeMap<u32, TtfDistribution> = dynaddr_exec::par_fold(
        probes.iter().collect(),
        BTreeMap::new,
        |mut map: BTreeMap<u32, TtfDistribution>, p: &AnalyzableProbe| {
            if !p.multi_as && p.meta.country.code() == country_code {
                map.entry(p.primary_asn.0).or_default().extend(p.same_as_durations());
            }
            map
        },
        merge_keyed,
    );
    let mut out: Vec<(Asn, TtfCurve)> = map
        .into_iter()
        .filter(|(_, d)| d.total_years() >= min_years)
        .map(|(asn, d)| (Asn(asn), d.finalize()))
        .collect();
    out.sort_by(|a, b| {
        b.1.total_years()
            .partial_cmp(&a.1.total_years())
            .expect("finite totals")
    });
    out
}

/// Total-time-fraction curve for a chosen set of ASes — Fig. 2
/// (the five ASes hosting the most probes that yielded durations).
pub fn as_distributions(
    probes: &[AnalyzableProbe],
    top_n: usize,
) -> Vec<(Asn, TtfCurve, usize)> {
    let (mut durations, probe_counts) = dynaddr_exec::par_fold(
        probes.iter().collect(),
        || (BTreeMap::new(), BTreeMap::new()),
        |(mut durations, mut probe_counts): (
            BTreeMap<u32, TtfDistribution>,
            BTreeMap<u32, usize>,
        ),
         p: &AnalyzableProbe| {
            if !p.multi_as {
                let ds = p.same_as_durations();
                if !ds.is_empty() {
                    *probe_counts.entry(p.primary_asn.0).or_insert(0) += 1;
                    durations.entry(p.primary_asn.0).or_default().extend(ds);
                }
            }
            (durations, probe_counts)
        },
        |(da, ca), (db, cb)| {
            let mut ca = ca;
            for (k, v) in cb {
                *ca.entry(k).or_insert(0) += v;
            }
            (merge_keyed(da, db), ca)
        },
    );
    let mut order: Vec<(u32, usize)> = probe_counts.into_iter().collect();
    order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    order
        .into_iter()
        .take(top_n)
        .map(|(asn, count)| {
            let dist = durations.remove(&asn).expect("counted implies present");
            (Asn(asn), dist.finalize(), count)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynaddr_atlas::logs::{AtlasDataset, ConnectionLogEntry, PeerAddr, ProbeMeta};
    use dynaddr_ip2as::{MonthlySnapshots, RouteTable};
    use dynaddr_types::{Country, ProbeId, SimTime};

    const H: i64 = 3_600;

    /// Two countries, two ASes; probe 1 (DE, AS100) changes daily, probe 2
    /// (US, AS200) changes every 50 days.
    fn probes() -> Vec<AnalyzableProbe> {
        let mut table = RouteTable::new();
        table.announce("10.0.0.0/16".parse().unwrap(), Asn(100));
        table.announce("20.0.0.0/16".parse().unwrap(), Asn(200));
        let snaps = MonthlySnapshots::uniform(table);

        let mut ds = AtlasDataset::default();
        let mut meta_de = ProbeMeta { probe: ProbeId(1), ..ProbeMeta::default() };
        meta_de.country = Country::new("DE").unwrap();
        ds.meta.push(meta_de);
        let mut meta_us = ProbeMeta { probe: ProbeId(2), ..ProbeMeta::default() };
        meta_us.country = Country::new("US").unwrap();
        ds.meta.push(meta_us);
        for k in 0..50i64 {
            ds.connections.push(ConnectionLogEntry {
                probe: ProbeId(1),
                start: SimTime(k * 24 * H),
                end: SimTime(k * 24 * H + 23 * H),
                peer: PeerAddr::V4(format!("10.0.1.{}", k + 1).parse().unwrap()),
            });
        }
        for k in 0..6i64 {
            ds.connections.push(ConnectionLogEntry {
                probe: ProbeId(2),
                start: SimTime(k * 50 * 24 * H),
                end: SimTime((k * 50 + 49) * 24 * H),
                peer: PeerAddr::V4(format!("20.0.1.{}", k + 1).parse().unwrap()),
            });
        }
        ds.normalize();
        crate::filtering::filter_probes(&ds, &snaps).probes
    }

    #[test]
    fn continent_rollup_separates_eu_and_na() {
        let probes = probes();
        let dists = continent_distributions(&probes);
        assert_eq!(dists.len(), 2);
        let by_cont: BTreeMap<Continent, TtfCurve> = dists.into_iter().collect();
        let eu = &by_cont[&Continent::EU];
        assert!(eu.fraction_at_mode(24.0, 0.05) > 0.9, "EU is all 24 h");
        let na = &by_cont[&Continent::NA];
        assert!(na.fraction_le_hours(24.0 * 40.0) < 0.1, "NA durations are ~49 d");
    }

    #[test]
    fn country_as_rollup_applies_min_years() {
        let probes = probes();
        let de = country_as_distributions(&probes, "DE", 0.05);
        assert_eq!(de.len(), 1);
        assert_eq!(de[0].0, Asn(100));
        // A ridiculous threshold filters everything.
        assert!(country_as_distributions(&probes, "DE", 50.0).is_empty());
        // Wrong country: empty.
        assert!(country_as_distributions(&probes, "FR", 0.0).is_empty());
    }

    #[test]
    fn rollups_are_identical_at_any_worker_count() {
        // The keyed par_fold reductions must be order-independent in
        // effect: byte-identical curves (float totals included) no matter
        // how the probe list is chunked.
        let probes = probes();
        dynaddr_exec::set_threads(Some(1));
        let continents = continent_distributions(&probes);
        let by_country = country_as_distributions(&probes, "DE", 0.0);
        let top = as_distributions(&probes, 5);
        for threads in [2, 3, 64] {
            dynaddr_exec::set_threads(Some(threads));
            assert_eq!(continent_distributions(&probes), continents, "threads={threads}");
            assert_eq!(
                country_as_distributions(&probes, "DE", 0.0),
                by_country,
                "threads={threads}"
            );
            assert_eq!(as_distributions(&probes, 5), top, "threads={threads}");
        }
        dynaddr_exec::set_threads(None);
    }

    #[test]
    fn top_as_selection_orders_by_probe_count() {
        let probes = probes();
        let top = as_distributions(&probes, 5);
        assert_eq!(top.len(), 2);
        // Both ASes have one probe each; tie broken by ASN.
        assert_eq!(top[0].0, Asn(100));
        assert_eq!(top[0].2, 1);
        let only_one = as_distributions(&probes, 1);
        assert_eq!(only_one.len(), 1);
    }
}
