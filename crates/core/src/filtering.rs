//! Probe filtering — the Table 2 funnel (§3.2–§3.3).
//!
//! The raw probe population cannot all witness true dynamic-address changes.
//! This module classifies every probe, in the paper's order:
//!
//! 1. **IPv6-only** — no IPv4 connections at all;
//! 2. **dual-stack** — connections from both families: when consecutive
//!    connections alternate between v4 and v6 we cannot bound how long any
//!    particular IPv4 address was held;
//! 3. **tagged** — user-tagged `multihomed` / `datacentre` / `core`;
//! 4. **behaviourally multihomed** — untagged probes whose connections
//!    *return* to previously used addresses (the alternating-address
//!    signature learned from the tagged population);
//! 5. **testing-only** — probes whose only change is away from the RIPE NCC
//!    testing address 193.0.0.78;
//! 6. **never-changed** — IPv4-only probes with no observed change;
//! 7. everything else is **analyzable**; probes whose changes cross
//!    autonomous systems are additionally marked **multi-AS** (kept for the
//!    geographic analysis with cross-AS changes discarded; dropped entirely
//!    from the AS-level analysis).

use crate::changes::{EventExtractor, ProbeEvents};
use dynaddr_atlas::logs::{testing_address, AtlasDataset, ConnectionLogEntry, ProbeMeta};
use dynaddr_ip2as::MonthlySnapshots;
use dynaddr_types::{Asn, ProbeId};
use serde::Serialize;
use std::collections::BTreeMap;

/// Minimum number of returns to one *specific* previously-held address that
/// marks a probe as behaviourally multihomed. A multihomed probe keeps
/// falling back to its fixed second address; organic reassignment may
/// occasionally re-draw an old address from the pool (a birthday collision
/// over a year of daily changes), but not the same one three times.
pub const ALTERNATION_RETURNS: usize = 3;

/// The classification of one probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ProbeClass {
    /// No IPv4 connections.
    Ipv6Only,
    /// Mixed IPv4/IPv6 connections.
    DualStack,
    /// Carries a disqualifying tag.
    Tagged,
    /// Alternates between previously used addresses.
    Multihomed,
    /// Only change was away from 193.0.0.78.
    TestingOnly,
    /// IPv4-only, no observed change.
    NeverChanged,
    /// Usable for the analysis.
    Analyzable,
}

/// One analyzable probe's cleaned data.
#[derive(Debug, Clone)]
pub struct AnalyzableProbe {
    /// Metadata (version, country, tags).
    pub meta: ProbeMeta,
    /// IPv4 connection-log entries, testing entries stripped, time-sorted.
    pub entries: Vec<ConnectionLogEntry>,
    /// Extracted changes/spans/gaps.
    pub events: ProbeEvents,
    /// ASN of each change `(from_asn, to_asn)`, parallel to `events.changes`.
    pub change_asns: Vec<(Asn, Asn)>,
    /// Whether any change crossed autonomous systems.
    pub multi_as: bool,
    /// The probe's modal ASN (by connection time).
    pub primary_asn: Asn,
}

/// The Table 2 funnel counts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct FilterCounts {
    /// All probes in the dataset.
    pub total: usize,
    /// IPv4-only probes with no change.
    pub never_changed: usize,
    /// Probes using both address families.
    pub dual_stack: usize,
    /// IPv6-only probes.
    pub ipv6_only: usize,
    /// Tag-disqualified probes.
    pub tagged: usize,
    /// Behaviourally multihomed probes.
    pub multihomed: usize,
    /// Probes whose only change is from the testing address.
    pub testing_only: usize,
    /// Probes usable for geographic analysis.
    pub analyzable_geo: usize,
    /// Of those, probes with changes spanning multiple ASes.
    pub multi_as: usize,
    /// Probes usable for AS-level analysis.
    pub analyzable_as: usize,
}

/// Output of the filtering stage.
pub struct FilterReport {
    /// Funnel counts (Table 2).
    pub counts: FilterCounts,
    /// Per-probe classification.
    pub classes: BTreeMap<u32, ProbeClass>,
    /// Cleaned analyzable probes (geographic set; check `multi_as` for the
    /// AS-level subset).
    pub probes: Vec<AnalyzableProbe>,
}

impl FilterCounts {
    /// Tallies one classification into its funnel bucket.
    fn record(&mut self, class: ProbeClass) {
        match class {
            ProbeClass::Ipv6Only => self.ipv6_only += 1,
            ProbeClass::DualStack => self.dual_stack += 1,
            ProbeClass::Tagged => self.tagged += 1,
            ProbeClass::Multihomed => self.multihomed += 1,
            ProbeClass::TestingOnly => self.testing_only += 1,
            ProbeClass::NeverChanged => self.never_changed += 1,
            ProbeClass::Analyzable => self.analyzable_geo += 1,
        }
    }

    /// Adds another partial tally — the `par_fold` merge. Every field is a
    /// plain sum, so the merge is associative with the default as identity.
    fn absorb(&mut self, other: &FilterCounts) {
        self.total += other.total;
        self.never_changed += other.never_changed;
        self.dual_stack += other.dual_stack;
        self.ipv6_only += other.ipv6_only;
        self.tagged += other.tagged;
        self.multihomed += other.multihomed;
        self.testing_only += other.testing_only;
        self.analyzable_geo += other.analyzable_geo;
        self.multi_as += other.multi_as;
        self.analyzable_as += other.analyzable_as;
    }
}

/// Runs the Table 2 funnel over a dataset.
///
/// Each probe's classification depends only on its own logs, so the per-probe
/// work fans out across the executor's workers; the funnel counts, class map,
/// and probe list are then reduced with a `par_fold` whose merge is a plain
/// monoid — counter sums, disjoint-key map union, chunk-order vector
/// concatenation — keeping the report identical at any worker count.
pub fn filter_probes(dataset: &AtlasDataset, snapshots: &MonthlySnapshots) -> FilterReport {
    let mut filter = StreamingFilter::new();
    filter.push(dataset, snapshots);
    filter.finish()
}

/// The Table 2 funnel as an incremental fold over dataset batches.
///
/// Classification is per-probe, so feeding the dataset in any batching —
/// the whole thing at once ([`filter_probes`]) or probe-range batches from
/// a [`dynaddr_atlas::DatasetStream`] — produces identical output: counts
/// are sums, the class map unions disjoint keys, and probes concatenate in
/// push order (ascending probe ids when batches arrive in file order).
pub struct StreamingFilter {
    counts: FilterCounts,
    classes: BTreeMap<u32, ProbeClass>,
    probes: Vec<AnalyzableProbe>,
}

impl Default for StreamingFilter {
    fn default() -> StreamingFilter {
        StreamingFilter::new()
    }
}

impl StreamingFilter {
    /// An empty funnel.
    pub fn new() -> StreamingFilter {
        StreamingFilter {
            counts: FilterCounts::default(),
            classes: BTreeMap::new(),
            probes: Vec::new(),
        }
    }

    /// Folds one batch of whole probes into the funnel (every probe whose
    /// meta row is in the batch must have all its connections there too).
    pub fn push(&mut self, batch: &AtlasDataset, snapshots: &MonthlySnapshots) {
        let classified: Vec<(ProbeClass, Option<AnalyzableProbe>)> =
            dynaddr_exec::par_map(&batch.meta, |meta| {
                classify(meta, batch.connections_of(meta.probe), snapshots)
            });

        let items: Vec<(u32, ProbeClass, Option<AnalyzableProbe>)> = batch
            .meta
            .iter()
            .zip(classified)
            .map(|(meta, (class, probe))| (meta.probe.0, class, probe))
            .collect();
        let (counts, classes, mut probes) = dynaddr_exec::par_fold(
            items,
            || (FilterCounts::default(), BTreeMap::new(), Vec::new()),
            |(mut counts, mut classes, mut probes), (id, class, probe)| {
                counts.record(class);
                classes.insert(id, class);
                probes.extend(probe);
                (counts, classes, probes)
            },
            |(mut ca, mut la, mut pa), (cb, lb, mut pb)| {
                ca.absorb(&cb);
                la.extend(lb);
                pa.append(&mut pb);
                (ca, la, pa)
            },
        );
        self.counts.absorb(&counts);
        self.counts.total += batch.meta.len();
        self.classes.extend(classes);
        self.probes.append(&mut probes);
    }

    /// The analyzable probes accumulated so far, in push order (callers
    /// streaming per-probe work can process `probes()[prev..]` after each
    /// push).
    pub fn probes(&self) -> &[AnalyzableProbe] {
        &self.probes
    }

    /// Closes the funnel: derives the cross-batch counts (multi-AS and the
    /// AS-level analyzable set) and returns the report.
    pub fn finish(mut self) -> FilterReport {
        self.counts.multi_as = self.probes.iter().filter(|p| p.multi_as).count();
        self.counts.analyzable_as = self.counts.analyzable_geo - self.counts.multi_as;
        FilterReport { counts: self.counts, classes: self.classes, probes: self.probes }
    }
}

/// Incremental Table 2 classifier for one probe: the state machine behind
/// [`filter_probes`]'s per-probe `classify`, usable one connection-log entry
/// at a time.
///
/// Feed entries in start-time order with [`push`](Self::push);
/// [`finish`](Self::finish) runs the funnel in the paper's order and yields
/// the class plus the cleaned [`AnalyzableProbe`] when applicable.
/// [`class`](Self::class) gives the funnel verdict *as of the entries seen
/// so far* in O(1) — the rolling-Table-2 hook for a resident daemon.
///
/// Once the verdict can no longer reach `Analyzable` (a v6 entry arrives, a
/// disqualifying tag is present, or the multihomed return threshold is
/// crossed — all monotone conditions), the retained per-entry state is
/// dropped: a filtered-out probe costs O(1) memory no matter how long its
/// stream runs.
#[derive(Debug, Clone)]
pub struct ProbeMachine {
    meta: ProbeMeta,
    tagged: bool,
    v4_count: usize,
    v6_count: usize,
    /// Still inside the leading run of testing-address entries.
    in_leading_testing: bool,
    had_testing: bool,
    /// Heavy per-entry state; `None` once the class is settled short of
    /// `Analyzable`.
    heavy: Option<Box<HeavyState>>,
    /// Running `max_returns_to_one_address` verdict (monotone).
    multihomed: bool,
}

/// The per-entry state a still-analyzable probe accumulates.
#[derive(Debug, Clone, Default)]
struct HeavyState {
    /// Stripped IPv4 entries, time-sorted.
    entries: Vec<ConnectionLogEntry>,
    // Behavioural-multihoming detection (running max_returns_to_one_address).
    seen: std::collections::HashSet<std::net::Ipv4Addr>,
    returns: std::collections::HashMap<std::net::Ipv4Addr, usize>,
    prev_addr: Option<std::net::Ipv4Addr>,
    max_returns: usize,
    // Change/span/gap extraction.
    extractor: EventExtractor,
    /// ASN of each emitted change, parallel to the extractor's changes.
    change_asns: Vec<(Asn, Asn)>,
    multi_as: bool,
    /// Connection seconds per origin ASN (for the primary-ASN vote).
    time_by_asn: BTreeMap<u32, i64>,
}

impl ProbeMachine {
    /// A fresh machine for one probe.
    pub fn new(meta: ProbeMeta) -> ProbeMachine {
        let tagged = meta.tags.iter().any(|t| t.disqualifies());
        ProbeMachine {
            meta,
            tagged,
            v4_count: 0,
            v6_count: 0,
            in_leading_testing: true,
            had_testing: false,
            heavy: if tagged { None } else { Some(Box::default()) },
            multihomed: false,
        }
    }

    /// Feeds the next connection-log entry (start-time order).
    pub fn push(&mut self, e: &ConnectionLogEntry, snapshots: &MonthlySnapshots) {
        debug_assert_eq!(e.probe, self.meta.probe);
        let Some(addr) = e.peer.v4() else {
            self.v6_count += 1;
            self.heavy = None; // Ipv6Only/DualStack from here on
            return;
        };
        self.v4_count += 1;
        if self.in_leading_testing {
            if addr == testing_address() {
                self.had_testing = true;
                return; // stripped: a leading testing-bench entry
            }
            self.in_leading_testing = false;
        }
        let Some(h) = self.heavy.as_deref_mut() else {
            return;
        };

        // Running max_returns_to_one_address: a return is a switch onto an
        // address seen before (not the one currently held).
        if h.prev_addr.is_some() && h.prev_addr != Some(addr) && h.seen.contains(&addr) {
            let n = h.returns.entry(addr).or_insert(0);
            *n += 1;
            h.max_returns = h.max_returns.max(*n);
        }
        h.seen.insert(addr);
        h.prev_addr = Some(addr);
        if h.max_returns >= ALTERNATION_RETURNS {
            self.multihomed = true;
            self.heavy = None; // Multihomed from here on
            return;
        }

        let changes_before = h.extractor.changes().len();
        h.extractor.push(e);
        // Map a newly emitted change to origin ASes using the month each
        // address was observed.
        if let Some(c) = h.extractor.changes().get(changes_before) {
            let from = snapshots.asn_at(c.gap_start, c.from);
            let to = snapshots.asn_at(c.gap_end, c.to);
            h.change_asns.push((from, to));
            h.multi_as |= from != to;
        }
        let asn = snapshots.asn_at(e.start, addr);
        *h.time_by_asn.entry(asn.0).or_insert(0) += (e.end - e.start).secs();
        h.entries.push(e.clone());
    }

    /// The funnel verdict over the entries seen so far, in O(1). The final
    /// class ([`finish`](Self::finish)) of a fully fed machine is identical.
    pub fn class(&self) -> ProbeClass {
        if self.v4_count == 0 {
            return ProbeClass::Ipv6Only;
        }
        if self.v6_count > 0 {
            return ProbeClass::DualStack;
        }
        if self.tagged {
            return ProbeClass::Tagged;
        }
        let h = self.heavy.as_deref();
        if h.is_none_or(|h| h.entries.is_empty()) {
            if self.multihomed {
                return ProbeClass::Multihomed;
            }
            // Only testing-bench connections so far.
            return ProbeClass::TestingOnly;
        }
        let h = h.expect("checked above");
        if h.extractor.changes().is_empty() {
            if self.had_testing {
                ProbeClass::TestingOnly
            } else {
                ProbeClass::NeverChanged
            }
        } else {
            ProbeClass::Analyzable
        }
    }

    /// Whether any change so far crossed autonomous systems.
    pub fn multi_as(&self) -> bool {
        self.heavy.as_deref().is_some_and(|h| h.multi_as)
    }

    /// Retained (stripped, IPv4) entries so far — empty once the class is
    /// settled short of `Analyzable`.
    pub fn entries_len(&self) -> usize {
        self.heavy.as_deref().map_or(0, |h| h.entries.len())
    }

    /// Address changes emitted so far.
    pub fn changes_len(&self) -> usize {
        self.heavy.as_deref().map_or(0, |h| h.extractor.changes().len())
    }

    /// Inter-connection gaps emitted so far.
    pub fn gaps_len(&self) -> usize {
        self.heavy.as_deref().map_or(0, |h| h.extractor.gaps().len())
    }

    /// Whether a leading testing-address entry was stripped.
    pub fn had_testing(&self) -> bool {
        self.had_testing
    }

    /// The probe's metadata.
    pub fn meta(&self) -> &ProbeMeta {
        &self.meta
    }

    /// Runs the funnel to its verdict; analyzable probes also yield their
    /// cleaned data.
    pub fn finish(self) -> (ProbeClass, Option<AnalyzableProbe>) {
        if self.v4_count == 0 {
            return (ProbeClass::Ipv6Only, None);
        }
        if self.v6_count > 0 {
            return (ProbeClass::DualStack, None);
        }
        if self.tagged {
            return (ProbeClass::Tagged, None);
        }
        if self.multihomed {
            return (ProbeClass::Multihomed, None);
        }
        let h = *self.heavy.expect("untagged v4-only probe keeps heavy state");
        if h.entries.is_empty() {
            // Only testing-bench connections: nothing analyzable.
            return (ProbeClass::TestingOnly, None);
        }

        let mut events = h.extractor.finish();
        events.had_testing_entry = self.had_testing;
        if events.changes.is_empty() {
            let class = if self.had_testing {
                ProbeClass::TestingOnly
            } else {
                ProbeClass::NeverChanged
            };
            return (class, None);
        }

        // Primary ASN: the origin of the address the probe spent most time on.
        let primary_asn = Asn(h
            .time_by_asn
            .iter()
            .max_by_key(|(_, secs)| **secs)
            .map(|(asn, _)| *asn)
            .unwrap_or(0));

        let probe = AnalyzableProbe {
            meta: self.meta,
            entries: h.entries,
            events,
            change_asns: h.change_asns,
            multi_as: h.multi_as,
            primary_asn,
        };
        (ProbeClass::Analyzable, Some(probe))
    }
}

/// Classifies one probe; analyzable probes also yield their cleaned data.
/// Batch driver over [`ProbeMachine`].
fn classify(
    meta: &ProbeMeta,
    all_entries: &[ConnectionLogEntry],
    snapshots: &MonthlySnapshots,
) -> (ProbeClass, Option<AnalyzableProbe>) {
    let mut m = ProbeMachine::new(meta.clone());
    for e in all_entries {
        m.push(e, snapshots);
    }
    m.finish()
}

impl AnalyzableProbe {
    /// The probe id.
    pub fn probe(&self) -> ProbeId {
        self.meta.probe
    }

    /// Changes usable at AS granularity: both sides in the same AS.
    /// For multi-AS probes this drops the cross-AS changes but keeps the
    /// rest (the geographic-analysis rule of §3.3).
    pub fn same_as_changes(&self) -> Vec<usize> {
        self.change_asns
            .iter()
            .enumerate()
            .filter(|(_, (f, t))| f == t)
            .map(|(i, _)| i)
            .collect()
    }

    /// Complete-span durations whose bounding changes are both within one
    /// AS. A span bounded by a cross-AS change is not a dynamic-pool
    /// duration and is discarded (§3.3).
    pub fn same_as_durations(&self) -> Vec<dynaddr_types::SimDuration> {
        let cross: Vec<bool> = self.change_asns.iter().map(|(f, t)| f != t).collect();
        let mut out = Vec::new();
        // Span k (complete) is bounded by change k-1 on the left and change
        // k on the right, where spans[0] is bounded on the left by nothing.
        let mut change_idx = 0usize;
        for (k, span) in self.events.spans.iter().enumerate() {
            if k > 0 {
                // A new span begins after each change.
                change_idx = k - 1;
            }
            if !span.complete {
                continue;
            }
            let left = change_idx;
            let right = change_idx + 1;
            let left_cross = cross.get(left).copied().unwrap_or(false);
            let right_cross = cross.get(right).copied().unwrap_or(false);
            if !left_cross && !right_cross {
                out.push(span.duration());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynaddr_atlas::logs::{PeerAddr, ProbeMeta};
    use dynaddr_ip2as::RouteTable;
    use dynaddr_types::{Country, ProbeTag, ProbeVersion, SimTime};

    const H: i64 = 3_600;

    fn snaps() -> MonthlySnapshots {
        let mut t = RouteTable::new();
        t.announce("10.0.0.0/16".parse().unwrap(), Asn(100));
        t.announce("20.0.0.0/16".parse().unwrap(), Asn(200));
        MonthlySnapshots::uniform(t)
    }

    fn meta(id: u32) -> ProbeMeta {
        ProbeMeta {
            probe: ProbeId(id),
            version: ProbeVersion::V3,
            country: Country::new("DE").unwrap(),
            tags: vec![],
        }
    }

    fn v4(id: u32, start: i64, end: i64, addr: &str) -> ConnectionLogEntry {
        ConnectionLogEntry {
            probe: ProbeId(id),
            start: SimTime(start),
            end: SimTime(end),
            peer: PeerAddr::V4(addr.parse().unwrap()),
        }
    }

    fn v6(id: u32, start: i64, end: i64) -> ConnectionLogEntry {
        ConnectionLogEntry {
            probe: ProbeId(id),
            start: SimTime(start),
            end: SimTime(end),
            peer: PeerAddr::V6("2001:db8::1".parse().unwrap()),
        }
    }

    fn run(metas: Vec<ProbeMeta>, conns: Vec<ConnectionLogEntry>) -> FilterReport {
        let mut ds = AtlasDataset { meta: metas, connections: conns, ..AtlasDataset::default() };
        ds.normalize();
        filter_probes(&ds, &snaps())
    }

    #[test]
    fn ipv6_only_filtered() {
        let r = run(vec![meta(1)], vec![v6(1, 0, H), v6(1, 2 * H, 3 * H)]);
        assert_eq!(r.counts.ipv6_only, 1);
        assert_eq!(r.counts.analyzable_geo, 0);
        assert_eq!(r.classes[&1], ProbeClass::Ipv6Only);
    }

    #[test]
    fn dual_stack_filtered_even_with_v4_changes() {
        let r = run(
            vec![meta(1)],
            vec![
                v4(1, 0, H, "10.0.0.1"),
                v6(1, H + 60, 2 * H),
                v4(1, 2 * H + 60, 3 * H, "10.0.0.2"),
            ],
        );
        assert_eq!(r.counts.dual_stack, 1);
        assert_eq!(r.counts.analyzable_geo, 0);
    }

    #[test]
    fn tagged_filtered() {
        let mut m = meta(1);
        m.tags = vec![ProbeTag::Datacentre];
        let r = run(vec![m], vec![v4(1, 0, H, "10.0.0.1"), v4(1, 2 * H, 3 * H, "10.0.0.2")]);
        assert_eq!(r.counts.tagged, 1);
    }

    #[test]
    fn alternating_detected_as_multihomed() {
        // A,B,A,C,A,D,A — returns to A three times.
        let seq = [
            "10.0.0.1", "10.0.0.2", "10.0.0.1", "10.0.0.3", "10.0.0.1", "10.0.0.4",
            "10.0.0.1",
        ];
        let conns: Vec<_> = seq
            .iter()
            .enumerate()
            .map(|(i, a)| v4(1, i as i64 * 2 * H, i as i64 * 2 * H + H, a))
            .collect();
        let r = run(vec![meta(1)], conns);
        assert_eq!(r.counts.multihomed, 1);
    }

    #[test]
    fn birthday_collisions_are_not_multihomed() {
        // A year of daily changes may re-draw old addresses a few times —
        // but different ones each time. Not multihoming.
        let seq = [
            "10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.1", "10.0.0.4", "10.0.0.2",
            "10.0.0.5", "10.0.0.3", "10.0.0.6",
        ];
        let conns: Vec<_> = seq
            .iter()
            .enumerate()
            .map(|(i, a)| v4(1, i as i64 * 2 * H, i as i64 * 2 * H + H, a))
            .collect();
        let r = run(vec![meta(1)], conns);
        assert_eq!(r.counts.multihomed, 0);
        assert_eq!(r.counts.analyzable_geo, 1);
    }

    #[test]
    fn organic_changes_are_not_multihomed() {
        let seq = ["10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4"];
        let conns: Vec<_> = seq
            .iter()
            .enumerate()
            .map(|(i, a)| v4(1, i as i64 * 2 * H, i as i64 * 2 * H + H, a))
            .collect();
        let r = run(vec![meta(1)], conns);
        assert_eq!(r.counts.analyzable_geo, 1);
        assert_eq!(r.counts.multihomed, 0);
    }

    #[test]
    fn never_changed() {
        let r = run(
            vec![meta(1)],
            vec![v4(1, 0, H, "10.0.0.1"), v4(1, 2 * H, 3 * H, "10.0.0.1")],
        );
        assert_eq!(r.counts.never_changed, 1);
    }

    #[test]
    fn testing_only() {
        let r = run(
            vec![meta(1)],
            vec![
                v4(1, 0, H, "193.0.0.78"),
                v4(1, 2 * H, 3 * H, "10.0.0.1"),
                v4(1, 4 * H, 5 * H, "10.0.0.1"),
            ],
        );
        assert_eq!(r.counts.testing_only, 1);
        assert_eq!(r.counts.never_changed, 0, "testing probes are their own bucket");
    }

    #[test]
    fn testing_entry_stripped_but_probe_analyzable_with_real_changes() {
        let r = run(
            vec![meta(1)],
            vec![
                v4(1, 0, H, "193.0.0.78"),
                v4(1, 2 * H, 3 * H, "10.0.0.1"),
                v4(1, 4 * H, 5 * H, "10.0.0.2"),
            ],
        );
        assert_eq!(r.counts.analyzable_geo, 1);
        // The testing→real transition is not a change.
        assert_eq!(r.probes[0].events.changes.len(), 1);
        assert!(r.probes[0].events.had_testing_entry);
    }

    #[test]
    fn multi_as_probes_flagged_and_counted() {
        let r = run(
            vec![meta(1)],
            vec![
                v4(1, 0, H, "10.0.0.1"),
                v4(1, 2 * H, 3 * H, "20.0.0.1"), // cross-AS
                v4(1, 4 * H, 5 * H, "20.0.0.2"),
            ],
        );
        assert_eq!(r.counts.analyzable_geo, 1);
        assert_eq!(r.counts.multi_as, 1);
        assert_eq!(r.counts.analyzable_as, 0);
        let p = &r.probes[0];
        assert!(p.multi_as);
        assert_eq!(p.same_as_changes(), vec![1], "only the within-AS change survives");
    }

    #[test]
    fn same_as_durations_drop_spans_bounded_by_cross_as_changes() {
        let r = run(
            vec![meta(1)],
            vec![
                v4(1, 0, H, "10.0.0.1"),
                v4(1, 2 * H, 10 * H, "10.0.0.2"),  // span bounded by within-AS + cross-AS
                v4(1, 11 * H, 20 * H, "20.0.0.1"), // cross-AS span, bounded cross/within
                v4(1, 21 * H, 30 * H, "20.0.0.2"),
            ],
        );
        let p = &r.probes[0];
        // Changes: 10.1→10.2 (same), 10.2→20.1 (cross), 20.1→20.2 (same).
        assert_eq!(p.events.changes.len(), 3);
        // Complete spans: 10.0.0.2 and 20.0.0.1, both touching the cross-AS
        // change — neither is a valid within-AS duration.
        assert!(p.same_as_durations().is_empty());
    }

    #[test]
    fn primary_asn_is_time_weighted() {
        let r = run(
            vec![meta(1)],
            vec![
                v4(1, 0, H, "10.0.0.1"),
                v4(1, 2 * H, 50 * H, "20.0.0.1"),
                v4(1, 51 * H, 52 * H, "10.0.0.2"),
            ],
        );
        assert_eq!(r.probes[0].primary_asn, Asn(200));
    }

    #[test]
    fn funnel_is_identical_at_any_worker_count() {
        // The Table 2 reduction runs through par_fold: counts, class map,
        // and probe order must not depend on how the probe list is chunked.
        let mut m_tag = meta(4);
        m_tag.tags = vec![ProbeTag::Core];
        let metas = vec![meta(1), meta(2), meta(3), m_tag, meta(5)];
        let conns = vec![
            v4(1, 0, H, "10.0.0.1"),
            v4(1, 2 * H, 3 * H, "10.0.0.2"),
            v4(2, 0, H, "10.0.0.9"),
            v6(3, 0, H),
            v4(4, 0, H, "10.0.0.5"),
            v4(5, 0, H, "10.0.0.7"),
            v4(5, 2 * H, 3 * H, "20.0.0.7"), // cross-AS: multi_as probe
        ];
        let shape = |r: &FilterReport| {
            (
                r.counts.clone(),
                r.classes.clone(),
                r.probes
                    .iter()
                    .map(|p| (p.probe().0, p.multi_as, p.primary_asn))
                    .collect::<Vec<_>>(),
            )
        };
        dynaddr_exec::set_threads(Some(1));
        let seq = shape(&run(metas.clone(), conns.clone()));
        for threads in [2, 3, 64] {
            dynaddr_exec::set_threads(Some(threads));
            assert_eq!(shape(&run(metas.clone(), conns.clone())), seq, "threads={threads}");
        }
        dynaddr_exec::set_threads(None);
    }

    #[test]
    fn funnel_counts_are_exhaustive() {
        let mut m_tag = meta(4);
        m_tag.tags = vec![ProbeTag::Core];
        let r = run(
            vec![meta(1), meta(2), meta(3), m_tag],
            vec![
                // 1: analyzable
                v4(1, 0, H, "10.0.0.1"),
                v4(1, 2 * H, 3 * H, "10.0.0.2"),
                // 2: never changed
                v4(2, 0, H, "10.0.0.9"),
                // 3: v6 only
                v6(3, 0, H),
                // 4: tagged
                v4(4, 0, H, "10.0.0.5"),
            ],
        );
        let c = &r.counts;
        assert_eq!(c.total, 4);
        assert_eq!(
            c.never_changed + c.dual_stack + c.ipv6_only + c.tagged + c.multihomed
                + c.testing_only + c.analyzable_geo,
            c.total
        );
        assert_eq!(c.analyzable_as + c.multi_as, c.analyzable_geo);
    }
}
