//! The end-to-end analysis pipeline: dataset in, every table and figure out.
//!
//! [`analyze`] runs the paper's full methodology in order: the Table 2
//! filtering funnel, duration extraction, the geography and per-AS
//! total-time-fraction distributions (Figs. 1–3), periodic classification
//! (Table 5), hour-of-day synchronization (Figs. 4–5), outage detection with
//! firmware filtering (Fig. 6), conditional change probabilities
//! (Figs. 7–8, Table 6), duration-bucketed renumbering (Fig. 9), and the
//! prefix-change analysis (Table 7).

use crate::assoc::{
    associate_network, associate_power, AssociatedOutage, CondProb, DurationBuckets,
    OutageKind,
};
use crate::filtering::{
    filter_probes, AnalyzableProbe, FilterCounts, FilterReport, StreamingFilter,
};
use crate::firmware::{reboot_series, strip_firmware_reboots};
use crate::geo::{as_distributions, continent_distributions, country_as_distributions};
use crate::hourly::{peak_window_fraction, periodic_change_hours};
use crate::outages::{detect_network_outages, detect_power_outages, detect_reboots, Reboot};
use crate::periodic::{table5, PeriodicConfig, Table5Row};
use crate::prefixes::{prefix_changes, Table7};
use crate::ttf::TtfCurve;
use dynaddr_atlas::logs::AtlasDataset;
use dynaddr_atlas::stream::{DatasetStream, DEFAULT_BATCH_PROBES};
use dynaddr_exec::{par_map_flat, par_run};
use dynaddr_ip2as::MonthlySnapshots;
use dynaddr_store::StoreError;
use dynaddr_types::{Asn, ProbeId};
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::Path;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Periodic-detection thresholds (Table 5).
    pub periodic: PeriodicConfig,
    /// Country for the Fig. 3 panel.
    pub fig3_country: String,
    /// Minimum total address time (years) for a Fig. 3 AS. The paper used 3
    /// years at full scale; scale proportionally for smaller worlds.
    pub fig3_min_years: f64,
    /// Number of ASes in the Fig. 2 / Fig. 7 / Fig. 8 panels.
    pub top_n_ases: usize,
    /// Minimum outages for a probe to yield a conditional probability.
    pub min_outages: usize,
    /// ASes (with expected period d) for the hour-of-day panels; defaults to
    /// Orange weekly and DTAG daily.
    pub hourly_panels: Vec<(u32, i64)>,
    /// ASes for the Fig. 9 duration-bucket panels; defaults to LGI & Orange.
    pub fig9_ases: Vec<u32>,
    /// Display names per ASN (cosmetic; unknown ASNs print as `AS<n>`).
    pub as_names: BTreeMap<u32, String>,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            periodic: PeriodicConfig::default(),
            fig3_country: "DE".to_string(),
            fig3_min_years: 0.3,
            top_n_ases: 5,
            min_outages: 3,
            hourly_panels: vec![(3215, 168), (3320, 24)],
            fig9_ases: vec![6830, 3215],
            as_names: BTreeMap::new(),
        }
    }
}

/// A rendered total-time-fraction distribution.
#[derive(Debug, Clone, Serialize)]
pub struct TtfSummary {
    /// Label (continent, AS name, …).
    pub label: String,
    /// Total address time in years (the legend numbers of Figs. 1–3).
    pub total_years: f64,
    /// Number of durations.
    pub n_durations: usize,
    /// CDF sampled at the paper's breakpoints `(hours, fraction ≤)`.
    pub curve: Vec<(f64, f64)>,
    /// Total time fraction at the 24-hour mode (±5%).
    pub mode_24h: f64,
    /// Total time fraction at the one-week mode (±5%).
    pub mode_168h: f64,
    /// Median duration in hours, by total-time weight.
    pub median_hours: f64,
}

impl TtfSummary {
    fn build(label: String, curve: TtfCurve) -> TtfSummary {
        let grid: Vec<f64> = log_grid();
        TtfSummary {
            label,
            total_years: curve.total_years(),
            n_durations: curve.count(),
            curve: curve.sampled_curve(&grid),
            mode_24h: curve.fraction_at_mode(24.0, 0.05),
            mode_168h: curve.fraction_at_mode(168.0, 0.05),
            median_hours: median_hours(&curve),
        }
    }
}

/// Median duration in hours, by total-time weight: the first curve step at
/// or past the 0.5 crossing. An empty distribution has no median and
/// reports 0.0. A non-empty curve whose accumulated fraction never reaches
/// 0.5 (possible only through floating-point round-off in the final step)
/// reports its last breakpoint rather than collapsing to zero.
fn median_hours(curve: &TtfCurve) -> f64 {
    let steps = curve.curve();
    let Some(last) = steps.last().copied() else {
        return 0.0;
    };
    steps
        .iter()
        .find(|(_, f)| *f >= 0.5)
        .map(|(h, _)| *h)
        .unwrap_or(last.0)
}

/// Log-spaced sampling grid from 15 minutes to two months, densified around
/// the paper's breakpoints.
fn log_grid() -> Vec<f64> {
    let mut grid: Vec<f64> = (0..64)
        .map(|i| 0.25 * (1_440.0f64 / 0.25).powf(i as f64 / 63.0))
        .collect();
    grid.extend(crate::ttf::paper_breakpoints_hours());
    grid.sort_by(|a, b| a.partial_cmp(b).expect("finite grid"));
    grid.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    grid
}

/// An hour-of-day panel (Fig. 4 / Fig. 5).
#[derive(Debug, Clone, Serialize)]
pub struct HourlyPanel {
    /// AS label.
    pub label: String,
    /// The ASN.
    pub asn: u32,
    /// The period whose span-ends are histogrammed.
    pub d_hours: i64,
    /// Changes per GMT hour.
    pub hist: [usize; 24],
    /// Fraction of changes in the densest 6-hour window.
    pub peak6h_fraction: f64,
}

/// One per-probe conditional-probability population (Fig. 7 / Fig. 8).
#[derive(Debug, Clone, Serialize)]
pub struct CondProbPanel {
    /// AS label.
    pub label: String,
    /// The ASN.
    pub asn: u32,
    /// Per-probe probabilities, sorted ascending (the CDF's x-values).
    pub probs: Vec<f64>,
}

impl CondProbPanel {
    /// Fraction of probes with probability ≥ `p`.
    pub fn fraction_ge(&self, p: f64) -> f64 {
        if self.probs.is_empty() {
            return 0.0;
        }
        let below = self.probs.partition_point(|&x| x < p);
        (self.probs.len() - below) as f64 / self.probs.len() as f64
    }
}

/// One Table 6 row.
#[derive(Debug, Clone, Serialize)]
pub struct Table6Row {
    /// ISP display name.
    pub name: String,
    /// The ASN (0 for the "All" row).
    pub asn: u32,
    /// Probes with ≥3 network and ≥3 power outages.
    pub n: usize,
    /// Percentage with P(ac|nw) > 0.8.
    pub pct_nw_gt08: f64,
    /// Percentage with P(ac|nw) = 1.
    pub pct_nw_eq1: f64,
    /// Percentage with P(ac|pw) > 0.8.
    pub pct_pw_gt08: f64,
    /// Percentage with P(ac|pw) = 1.
    pub pct_pw_eq1: f64,
}

/// The Fig. 6 reboot series.
#[derive(Debug, Clone, Serialize)]
pub struct FirmwarePanel {
    /// Unique rebooting probes per day of year.
    pub daily: Vec<usize>,
    /// Median daily count.
    pub median: f64,
    /// Detected update days (day-of-year).
    pub update_days: Vec<i64>,
}

/// A Fig. 9 panel.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Panel {
    /// AS label.
    pub label: String,
    /// The ASN.
    pub asn: u32,
    /// Bucketed outages.
    pub buckets: DurationBuckets,
}

/// Everything the paper reports, as structured data.
#[derive(Debug, Clone, Serialize)]
pub struct AnalysisReport {
    /// Table 2.
    pub filter: FilterCounts,
    /// Fig. 1.
    pub fig1_continents: Vec<TtfSummary>,
    /// Fig. 2.
    pub fig2_top_ases: Vec<TtfSummary>,
    /// Fig. 3.
    pub fig3_country: Vec<TtfSummary>,
    /// Table 5.
    pub table5: Vec<Table5Row>,
    /// Figs. 4–5 (one per configured panel).
    pub hourly: Vec<HourlyPanel>,
    /// Fig. 6.
    pub firmware: FirmwarePanel,
    /// Fig. 7.
    pub fig7_network: Vec<CondProbPanel>,
    /// Fig. 8.
    pub fig8_power: Vec<CondProbPanel>,
    /// Table 6.
    pub table6: Vec<Table6Row>,
    /// Fig. 9.
    pub fig9: Vec<Fig9Panel>,
    /// Table 7.
    pub table7: Table7,
}

/// Per-probe outage analysis retained for downstream consumers (examples,
/// ablations, tests).
pub struct OutageAnalysis {
    /// Associated outages per probe (network + power).
    pub outages: Vec<AssociatedOutage>,
    /// Reboots after firmware filtering.
    pub reboots: Vec<Reboot>,
    /// The Fig. 6 series.
    pub firmware: FirmwarePanel,
}

/// Runs outage detection + association over the analyzable probes.
pub fn outage_analysis(
    dataset: &AtlasDataset,
    probes: &[AnalyzableProbe],
) -> OutageAnalysis {
    outage_analysis_opts(dataset, probes, true)
}

/// [`outage_analysis`] with the firmware spike filter switchable — the
/// `repro ablation-firmware` experiment quantifies what the filter buys.
pub fn outage_analysis_opts(
    dataset: &AtlasDataset,
    probes: &[AnalyzableProbe],
    filter_firmware: bool,
) -> OutageAnalysis {
    // Reboots across all analyzable probes feed the Fig. 6 series; detection
    // reads each probe's own uptime log, so it fans out per probe.
    let all_reboots: Vec<Reboot> =
        par_map_flat(probes, |p| detect_reboots(dataset.uptime_of(p.probe())));
    let series = reboot_series(&all_reboots);
    let firmware = FirmwarePanel {
        daily: series.daily_unique_probes.clone(),
        median: series.median,
        update_days: series.update_days.clone(),
    };
    let cleaned = if filter_firmware {
        strip_firmware_reboots(&all_reboots, &series.update_days)
    } else {
        // The unfiltered ablation keeps every reboot; nothing reads
        // `all_reboots` past this point, so move it instead of cloning.
        all_reboots
    };

    // Per-probe detection + gap association, again independent per probe:
    // workers share the dataset and the cleaned reboot map read-only.
    let mut by_probe: BTreeMap<u32, Vec<Reboot>> = BTreeMap::new();
    for r in &cleaned {
        by_probe.entry(r.probe.0).or_default().push(*r);
    }
    let outages = par_map_flat(probes, |p| {
        let kroot = dataset.kroot_of(p.probe());
        let network = detect_network_outages(kroot);
        let mut found = associate_network(&p.events.gaps, &network);
        // Power analysis only on hardware with reliable uptime counters.
        if p.meta.version.reliable_uptime() {
            let reboots = by_probe.get(&p.probe().0).map(|v| v.as_slice()).unwrap_or(&[]);
            let power = detect_power_outages(reboots, kroot, &network);
            found.extend(associate_power(&p.events.gaps, &power));
        }
        found
    });
    OutageAnalysis { outages, reboots: cleaned, firmware }
}

/// Runs the complete pipeline.
pub fn analyze(
    dataset: &AtlasDataset,
    snapshots: &MonthlySnapshots,
    cfg: &AnalysisConfig,
) -> AnalysisReport {
    let _sp = dynaddr_obs::span("analyze");
    // ----- Filtering (Table 2) -------------------------------------------
    let report = {
        let _sp = dynaddr_obs::span("filter_probes");
        filter_probes(dataset, snapshots)
    };
    // ----- Outage detection (the only other dataset consumer) ------------
    let oa = {
        let _sp = dynaddr_obs::span("outage_analysis");
        outage_analysis(dataset, &report.probes)
    };
    finish_analysis(report, oa, snapshots, cfg)
}

/// [`analyze`] over a `dataset.store` file, one probe batch at a time.
///
/// Only the filtering funnel and outage detection read raw logs; both fold
/// over whole-probe batches, so the pipeline streams the file twice —
/// pass 1 classifies probes and detects reboots (the uptime table is
/// dropped batch by batch), the firmware series is derived globally, and
/// pass 2 detects and associates outages (dropping the k-root table, by
/// far the file's heaviest, batch by batch). Everything downstream runs on
/// the retained [`AnalyzableProbe`]s exactly as in [`analyze`]; the report
/// is byte-identical to the materialized path's. Peak memory is the
/// analyzable probes plus one batch, not the dataset.
pub fn analyze_streamed(
    path: &Path,
    snapshots: &MonthlySnapshots,
    cfg: &AnalysisConfig,
) -> Result<AnalysisReport, StoreError> {
    analyze_streamed_batched(path, snapshots, cfg, DEFAULT_BATCH_PROBES)
}

/// [`analyze_streamed`] with an explicit batch size (probes per batch).
pub fn analyze_streamed_batched(
    path: &Path,
    snapshots: &MonthlySnapshots,
    cfg: &AnalysisConfig,
    batch_probes: usize,
) -> Result<AnalysisReport, StoreError> {
    let _sp = dynaddr_obs::span("analyze_streamed");
    // ----- Pass 1: filtering funnel + reboot detection --------------------
    let mut stream = DatasetStream::with_batch_probes(path, batch_probes)?;
    let sp_pass1 = dynaddr_obs::span("pass1_filter_reboots");
    let progress = dynaddr_obs::Progress::start("analyze_pass1", stream.total_probes());
    let mut filter = StreamingFilter::new();
    let mut all_reboots: Vec<Reboot> = Vec::new();
    while let Some(batch) = stream.next_batch()? {
        let prev = filter.probes().len();
        filter.push(&batch, snapshots);
        // Reboot detection reads only this batch's uptime rows; fresh
        // probes are appended in file order, so the concatenation matches
        // the materialized path's single par_map_flat.
        let fresh = &filter.probes()[prev..];
        all_reboots
            .extend(par_map_flat(fresh, |p| detect_reboots(batch.uptime_of(p.probe()))));
        progress.add(batch.meta.len() as u64);
    }
    progress.finish();
    drop(sp_pass1);
    let report = filter.finish();

    // ----- Firmware series (needs the global reboot population) -----------
    let series = reboot_series(&all_reboots);
    let firmware = FirmwarePanel {
        daily: series.daily_unique_probes.clone(),
        median: series.median,
        update_days: series.update_days.clone(),
    };
    let cleaned = strip_firmware_reboots(&all_reboots, &series.update_days);
    drop(all_reboots);
    let mut by_probe: BTreeMap<u32, Vec<Reboot>> = BTreeMap::new();
    for r in &cleaned {
        by_probe.entry(r.probe.0).or_default().push(*r);
    }

    // ----- Pass 2: outage detection + association -------------------------
    let mut stream = DatasetStream::with_batch_probes(path, batch_probes)?;
    let sp_pass2 = dynaddr_obs::span("pass2_outages");
    let progress = dynaddr_obs::Progress::start("analyze_pass2", stream.total_probes());
    let probes = &report.probes;
    let mut outages: Vec<AssociatedOutage> = Vec::new();
    // Analyzable probes are in ascending id order, so each batch consumes
    // a contiguous slice of them.
    let mut next = 0usize;
    while let Some(batch) = stream.next_batch()? {
        progress.add(batch.meta.len() as u64);
        let Some(last) = batch.meta.last() else { continue };
        let hi = last.probe.0;
        let lo = next;
        while next < probes.len() && probes[next].probe().0 <= hi {
            next += 1;
        }
        let in_batch = &probes[lo..next];
        outages.extend(par_map_flat(in_batch, |p| {
            let kroot = batch.kroot_of(p.probe());
            let network = detect_network_outages(kroot);
            let mut found = associate_network(&p.events.gaps, &network);
            if p.meta.version.reliable_uptime() {
                let reboots =
                    by_probe.get(&p.probe().0).map(|v| v.as_slice()).unwrap_or(&[]);
                let power = detect_power_outages(reboots, kroot, &network);
                found.extend(associate_power(&p.events.gaps, &power));
            }
            found
        }));
    }
    progress.finish();
    drop(sp_pass2);
    let oa = OutageAnalysis { outages, reboots: cleaned, firmware };
    Ok(finish_analysis(report, oa, snapshots, cfg))
}

/// Everything downstream of the two dataset-consuming stages: turns the
/// filter report and outage analysis into the full [`AnalysisReport`].
/// Shared verbatim by [`analyze`], [`analyze_streamed`], and the live
/// analyzer's seal ([`crate::live::IncrementalAnalyzer::seal`]), which is
/// what makes the three paths byte-identical.
pub(crate) fn finish_analysis(
    report: FilterReport,
    oa: OutageAnalysis,
    snapshots: &MonthlySnapshots,
    cfg: &AnalysisConfig,
) -> AnalysisReport {
    let _sp = dynaddr_obs::span("finish_analysis");
    let name_of = |asn: u32| {
        cfg.as_names
            .get(&asn)
            .cloned()
            .unwrap_or_else(|| format!("AS{asn}"))
    };
    let probes = &report.probes;

    // ----- Durations & TTF (Figs. 1–3) ------------------------------------
    // The three panels read the same probe set but share no state; each gets
    // its own scoped thread when the executor allows it.
    let ttf_tasks: Vec<Box<dyn FnOnce() -> Vec<TtfSummary> + Send + '_>> = vec![
        Box::new(|| {
            continent_distributions(probes)
                .into_iter()
                .map(|(c, d)| TtfSummary::build(c.to_string(), d))
                .collect()
        }),
        Box::new(|| {
            as_distributions(probes, cfg.top_n_ases)
                .into_iter()
                .map(|(asn, d, n)| {
                    TtfSummary::build(format!("{} ({} probes)", name_of(asn.0), n), d)
                })
                .collect()
        }),
        Box::new(|| {
            country_as_distributions(probes, &cfg.fig3_country, cfg.fig3_min_years)
                .into_iter()
                .map(|(asn, d)| TtfSummary::build(name_of(asn.0), d))
                .collect()
        }),
    ];
    let mut ttf_panels = par_run(ttf_tasks).into_iter();
    let fig1_continents = ttf_panels.next().expect("three TTF panels");
    let fig2_top_ases = ttf_panels.next().expect("three TTF panels");
    let fig3_country = ttf_panels.next().expect("three TTF panels");

    // ----- Periodic classification (Table 5) -------------------------------
    let (table5_rows, _verdicts) = table5(probes, &cfg.as_names, &cfg.periodic);

    // ----- Hour-of-day (Figs. 4–5) ----------------------------------------
    let hourly = cfg
        .hourly_panels
        .iter()
        .map(|&(asn, d)| {
            let hist = periodic_change_hours(probes, Asn(asn), d, cfg.periodic.tolerance);
            HourlyPanel {
                label: name_of(asn),
                asn,
                d_hours: d,
                peak6h_fraction: peak_window_fraction(&hist),
                hist,
            }
        })
        .collect();

    // ----- Outages (Figs. 6–9, Table 6) ------------------------------------
    // Per-probe conditional probabilities over the AS-level population.
    struct ProbeCp {
        asn: u32,
        changed_once: bool,
        nw: crate::assoc::CondProb,
        pw: crate::assoc::CondProb,
        v3: bool,
    }
    // One grouping pass over the outages; scanning the global list per
    // probe (as `cond_prob` does) is O(probes × outages) and dominated
    // analyze beyond 10× paper scale.
    let mut cp_counts: BTreeMap<u32, [(usize, usize); 2]> = BTreeMap::new();
    for o in &oa.outages {
        let slot = &mut cp_counts.entry(o.probe.0).or_insert([(0, 0); 2])
            [(o.kind == OutageKind::Power) as usize];
        slot.0 += 1;
        slot.1 += o.address_changed as usize;
    }
    let mut probe_cps: Vec<ProbeCp> = Vec::new();
    for p in probes {
        if p.multi_as {
            continue;
        }
        let id: ProbeId = p.probe();
        let [nw, pw] = cp_counts.get(&id.0).copied().unwrap_or([(0, 0); 2]);
        probe_cps.push(ProbeCp {
            asn: p.primary_asn.0,
            changed_once: !p.events.changes.is_empty(),
            nw: CondProb { probe: id, outages: nw.0, changed: nw.1 },
            pw: CondProb { probe: id, outages: pw.0, changed: pw.1 },
            v3: p.meta.version.reliable_uptime(),
        });
    }

    // Fig. 7/8 panels for the top ASes by qualifying probe count.
    let panel_for = |kind: OutageKind| -> Vec<CondProbPanel> {
        let mut per_as: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
        for cp in &probe_cps {
            let (count, p) = match kind {
                OutageKind::Network => (cp.nw.outages, cp.nw.p()),
                OutageKind::Power => {
                    if !cp.v3 {
                        continue;
                    }
                    (cp.pw.outages, cp.pw.p())
                }
            };
            if cp.changed_once && count >= cfg.min_outages {
                per_as.entry(cp.asn).or_default().push(p);
            }
        }
        let mut order: Vec<(u32, usize)> =
            per_as.iter().map(|(a, v)| (*a, v.len())).collect();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        order
            .into_iter()
            .take(cfg.top_n_ases)
            .map(|(asn, n)| {
                let mut probs = per_as.remove(&asn).expect("present");
                probs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                CondProbPanel { label: format!("{} ({n})", name_of(asn)), asn, probs }
            })
            .collect()
    };
    let fig7_network = panel_for(OutageKind::Network);
    let fig8_power = panel_for(OutageKind::Power);

    // Table 6: probes with ≥min outages of BOTH kinds (v3 only, since the
    // power side requires it).
    let mut t6_groups: BTreeMap<u32, Vec<&ProbeCp>> = BTreeMap::new();
    let mut t6_all: Vec<&ProbeCp> = Vec::new();
    for cp in &probe_cps {
        if cp.v3 && cp.nw.outages >= cfg.min_outages && cp.pw.outages >= cfg.min_outages {
            t6_groups.entry(cp.asn).or_default().push(cp);
            t6_all.push(cp);
        }
    }
    let pctf = |num: usize, den: usize| {
        if den == 0 {
            0.0
        } else {
            100.0 * num as f64 / den as f64
        }
    };
    let row_from = |name: String, asn: u32, group: &[&ProbeCp]| {
        let n = group.len();
        Table6Row {
            name,
            asn,
            n,
            pct_nw_gt08: pctf(group.iter().filter(|c| c.nw.p() > 0.8).count(), n),
            pct_nw_eq1: pctf(
                group.iter().filter(|c| c.nw.changed == c.nw.outages).count(),
                n,
            ),
            pct_pw_gt08: pctf(group.iter().filter(|c| c.pw.p() > 0.8).count(), n),
            pct_pw_eq1: pctf(
                group.iter().filter(|c| c.pw.changed == c.pw.outages).count(),
                n,
            ),
        }
    };
    let mut table6 = vec![row_from("All".to_string(), 0, &t6_all)];
    let mut as_rows: Vec<Table6Row> = t6_groups
        .iter()
        .filter(|(_, g)| g.iter().filter(|c| c.nw.p() > 0.8).count() >= 5)
        .map(|(asn, g)| row_from(name_of(*asn), *asn, g))
        .collect();
    as_rows.sort_by(|a, b| b.n.cmp(&a.n).then(a.asn.cmp(&b.asn)));
    table6.extend(as_rows);

    // Fig. 9 panels.
    let asn_of_probe: BTreeMap<u32, u32> = probes
        .iter()
        .filter(|p| !p.multi_as)
        .map(|p| (p.probe().0, p.primary_asn.0))
        .collect();
    let fig9 = cfg
        .fig9_ases
        .iter()
        .map(|&asn| {
            let of_as: Vec<AssociatedOutage> = oa
                .outages
                .iter()
                .filter(|o| asn_of_probe.get(&o.probe.0) == Some(&asn))
                .copied()
                .collect();
            Fig9Panel { label: name_of(asn), asn, buckets: DurationBuckets::build(&of_as) }
        })
        .collect();

    // ----- Prefix changes (Table 7) -----------------------------------------
    let table7 = prefix_changes(probes, snapshots);

    AnalysisReport {
        filter: report.counts,
        fig1_continents,
        fig2_top_ases,
        fig3_country,
        table5: table5_rows,
        hourly,
        firmware: oa.firmware,
        fig7_network,
        fig8_power,
        table6,
        fig9,
        table7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynaddr_atlas::world::{paper_route_tables, paper_world};

    /// A smoke test over a very small simulated world: the pipeline must run
    /// end to end and produce populated sections. Heavier shape assertions
    /// live in the workspace integration tests.
    #[test]
    fn pipeline_runs_on_small_world() {
        let world = paper_world(0.03, 7);
        let out = dynaddr_atlas::simulate(&world);
        let snaps = paper_route_tables(&world);
        let mut cfg = AnalysisConfig { fig3_min_years: 0.05, ..AnalysisConfig::default() };
        for (asn, policy) in &out.truth.isp_policies {
            cfg.as_names.insert(*asn, policy.name.clone());
        }
        let report = analyze(&out.dataset, &snaps, &cfg);

        assert!(report.filter.total > 200, "total {}", report.filter.total);
        assert!(report.filter.analyzable_geo > 100);
        assert!(!report.fig1_continents.is_empty());
        assert!(!report.fig2_top_ases.is_empty());
        assert!(!report.table5.is_empty(), "periodic ISPs must be detected");
        assert!(report.table7.overall.changes > 1_000);
        assert_eq!(report.hourly.len(), 2);
        assert_eq!(report.fig9.len(), 2);
        // Firmware spikes: five updates were pushed.
        assert!(
            !report.firmware.update_days.is_empty(),
            "firmware spikes must be detected"
        );
    }
}
