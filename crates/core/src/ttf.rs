//! The total-time-fraction metric (§4.1) and duration distributions.
//!
//! For a probe `p` and duration `d`, the total time fraction is
//! `f_d^p = d · n(d) / Σ(D)` — the fraction of the probe's total measured
//! address time spent in durations of length `d`. Compared with a plain CDF
//! of durations it up-weights long durations, making periodic modes visible
//! (the paper's Table 1 example: half the *durations* are 24 h long but
//! three quarters of the *time* is).
//!
//! Real durations are never exactly equal, so "durations of length d" is a
//! cluster: all durations within a relative tolerance of the cluster centre
//! (a 24-hour plan yields 23.5–23.9 h durations once reconnection delays
//! are subtracted). [`duration_clusters`] builds the clusters; the best
//! cluster's time-weighted mean, rounded to whole hours, is the reported
//! period `d`.

use crate::stats::WeightedCdf;
use dynaddr_types::SimDuration;

/// Default relative tolerance for duration clustering (±5%, matching the
/// paper's `d + 5%` slack in the MAX ≤ d column).
pub const DEFAULT_TOLERANCE: f64 = 0.05;

/// A cluster of near-equal durations.
#[derive(Debug, Clone, PartialEq)]
pub struct DurationCluster {
    /// Time-weighted mean of member durations, in hours.
    pub center_hours: f64,
    /// Number of member durations.
    pub count: usize,
    /// Total time spent in member durations, in seconds.
    pub total_secs: i64,
    /// Fraction of the probe's total address time in this cluster (f_d^p).
    pub fraction: f64,
}

impl DurationCluster {
    /// The cluster centre rounded to whole hours — the `d` of Table 5.
    pub fn d_hours(&self) -> i64 {
        self.center_hours.round() as i64
    }
}

/// Greedy single-pass clustering of sorted durations with relative
/// tolerance: a duration joins the current cluster while it stays within
/// `tol` of the running time-weighted mean.
///
/// ```
/// use dynaddr_core::ttf::duration_clusters;
/// use dynaddr_types::SimDuration;
///
/// // Table 1's durations: three ~24 h periods plus outage-shortened ones.
/// let durations: Vec<SimDuration> = [14.2, 0.7, 7.2, 23.6, 23.6, 23.6]
///     .iter()
///     .map(|h| SimDuration::from_hours_f64(*h))
///     .collect();
/// let clusters = duration_clusters(&durations, 0.05);
/// let dominant = clusters.iter().max_by_key(|c| c.total_secs).unwrap();
/// assert_eq!(dominant.d_hours(), 24);
/// assert!(dominant.fraction > 0.7, "three quarters of the *time* is 24h");
/// ```
pub fn duration_clusters(durations: &[SimDuration], tol: f64) -> Vec<DurationCluster> {
    assert!(tol > 0.0 && tol < 1.0, "tolerance must be in (0,1)");
    let total: i64 = durations.iter().map(|d| d.secs()).sum();
    if total <= 0 {
        return Vec::new();
    }
    let mut sorted: Vec<i64> = durations.iter().map(|d| d.secs()).filter(|&s| s > 0).collect();
    sorted.sort_unstable();

    let mut clusters = Vec::new();
    let mut start = 0usize;
    let mut sum: i64 = 0;
    for (i, &s) in sorted.iter().enumerate() {
        if i > start {
            let mean = sum as f64 / (i - start) as f64;
            if (s as f64 - mean).abs() > tol * mean {
                clusters.push(make_cluster(&sorted[start..i], total));
                start = i;
                sum = 0;
            }
        }
        sum += s;
    }
    if start < sorted.len() {
        clusters.push(make_cluster(&sorted[start..], total));
    }
    clusters
}

fn make_cluster(members: &[i64], total: i64) -> DurationCluster {
    let cluster_total: i64 = members.iter().sum();
    // Time-weighted mean: Σd² / Σd — long members dominate the centre.
    let weighted: f64 =
        members.iter().map(|&d| (d as f64) * (d as f64)).sum::<f64>() / cluster_total as f64;
    DurationCluster {
        center_hours: weighted / 3_600.0,
        count: members.len(),
        total_secs: cluster_total,
        fraction: cluster_total as f64 / total as f64,
    }
}

/// The dominant cluster (largest total time), if any.
pub fn dominant_cluster(durations: &[SimDuration], tol: f64) -> Option<DurationCluster> {
    duration_clusters(durations, tol)
        .into_iter()
        .max_by(|a, b| a.total_secs.cmp(&b.total_secs))
}

/// A group-level total-time-fraction distribution under construction
/// (continent, country, AS). Push durations in, then [`finalize`] into an
/// immutable [`TtfCurve`] for querying.
///
/// [`finalize`]: TtfDistribution::finalize
#[derive(Debug, Clone, Default)]
pub struct TtfDistribution {
    cdf: WeightedCdf,
    total_secs: i64,
}

impl TtfDistribution {
    /// Creates an empty distribution.
    pub fn new() -> TtfDistribution {
        TtfDistribution::default()
    }

    /// Adds one address duration.
    pub fn push(&mut self, d: SimDuration) {
        if d.secs() > 0 {
            self.cdf.push(d.as_hours(), d.secs() as f64);
            self.total_secs += d.secs();
        }
    }

    /// Adds many durations.
    pub fn extend(&mut self, ds: impl IntoIterator<Item = SimDuration>) {
        for d in ds {
            self.push(d);
        }
    }

    /// Absorbs another distribution built from a later chunk of the same
    /// probe sequence. Deterministic under `par_fold`: points concatenate
    /// in chunk order and the float total is recomputed left to right (see
    /// [`WeightedCdf::merge`]), so the result is byte-identical to a
    /// sequential build at any worker count.
    pub fn merge(&mut self, other: TtfDistribution) {
        self.cdf.merge(other.cdf);
        self.total_secs += other.total_secs;
    }

    /// Number of durations.
    pub fn count(&self) -> usize {
        self.cdf.len()
    }

    /// Total address time in years (the legend numbers of Figs. 1–3).
    pub fn total_years(&self) -> f64 {
        self.total_secs as f64 / (365.0 * 86_400.0)
    }

    /// Sorts the accumulated durations once and freezes them into an
    /// immutable, query-ready [`TtfCurve`].
    pub fn finalize(self) -> TtfCurve {
        let (points, total_weight) = self.cdf.into_sorted_points();
        let mut steps = Vec::with_capacity(points.len());
        let mut acc = 0.0;
        for (hours, weight) in points {
            acc += weight;
            steps.push((hours, acc));
        }
        TtfCurve { steps, total_weight, total_secs: self.total_secs }
    }
}

/// A finalized total-time-fraction curve: durations sorted and accumulated
/// once at construction, so every query is `&self`, `O(log n)`, and the
/// type is `Sync` — curves can be queried from any number of worker threads
/// without locking or re-sorting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TtfCurve {
    /// `(hours, cumulative weight)`, sorted by hours.
    steps: Vec<(f64, f64)>,
    total_weight: f64,
    total_secs: i64,
}

impl TtfCurve {
    /// Number of durations.
    pub fn count(&self) -> usize {
        self.steps.len()
    }

    /// Whether the curve holds no durations.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total address time in years (the legend numbers of Figs. 1–3).
    pub fn total_years(&self) -> f64 {
        self.total_secs as f64 / (365.0 * 86_400.0)
    }

    /// Fraction of total time in durations ≤ `hours` (the y-axis of
    /// Figs. 1–3).
    pub fn fraction_le_hours(&self, hours: f64) -> f64 {
        if self.total_weight == 0.0 {
            return 0.0;
        }
        let idx = self.steps.partition_point(|(v, _)| *v <= hours);
        if idx == 0 {
            0.0
        } else {
            self.steps[idx - 1].1 / self.total_weight
        }
    }

    /// Total time fraction at a mode `hours` with relative tolerance —
    /// weight within `[hours(1-tol), hours(1+tol)]`.
    pub fn fraction_at_mode(&self, hours: f64, tol: f64) -> f64 {
        if self.total_weight == 0.0 {
            return 0.0;
        }
        let lo = hours * (1.0 - tol);
        let hi = hours * (1.0 + tol);
        let a = self.steps.partition_point(|(v, _)| *v < lo);
        let b = self.steps.partition_point(|(v, _)| *v <= hi);
        if b <= a {
            return 0.0;
        }
        let below = if a == 0 { 0.0 } else { self.steps[a - 1].1 };
        (self.steps[b - 1].1 - below) / self.total_weight
    }

    /// The full cumulative curve `(hours, fraction)`.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        let denom = self.total_weight.max(f64::MIN_POSITIVE);
        self.steps.iter().map(|&(v, acc)| (v, acc / denom)).collect()
    }

    /// Samples the curve at fixed breakpoints (for rendering and testing).
    pub fn sampled_curve(&self, breakpoints_hours: &[f64]) -> Vec<(f64, f64)> {
        breakpoints_hours
            .iter()
            .map(|&h| (h, self.fraction_le_hours(h)))
            .collect()
    }
}

/// The x-axis breakpoints used by the paper's figures
/// (1h, 6h, 12h, 1d, 3d, 1w, 2w, 1mo, 2mo).
pub fn paper_breakpoints_hours() -> Vec<f64> {
    vec![1.0, 6.0, 12.0, 24.0, 72.0, 168.0, 336.0, 720.0, 1_440.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(hours: f64) -> SimDuration {
        SimDuration::from_hours_f64(hours)
    }

    #[test]
    fn empty_durations_no_clusters() {
        assert!(duration_clusters(&[], 0.05).is_empty());
        assert!(dominant_cluster(&[SimDuration::ZERO], 0.05).is_none());
    }

    #[test]
    fn table1_example_fraction() {
        // Paper §4.1: of the six durations in Table 1, the three ~24 h ones
        // account for roughly three quarters of total time.
        let ds = vec![h(14.2), h(0.7), h(7.2), h(23.6), h(23.6), h(23.6)];
        let best = dominant_cluster(&ds, 0.05).unwrap();
        assert_eq!(best.count, 3);
        assert_eq!(best.d_hours(), 24);
        let expected = (3.0 * 23.6) / (14.2 + 0.7 + 7.2 + 3.0 * 23.6);
        assert!((best.fraction - expected).abs() < 1e-9, "{}", best.fraction);
        assert!(best.fraction > 0.7);
    }

    #[test]
    fn clusters_split_on_tolerance() {
        let ds = vec![h(22.0), h(22.1), h(24.0), h(24.1), h(48.0)];
        let clusters = duration_clusters(&ds, 0.05);
        assert_eq!(clusters.len(), 3, "{clusters:?}");
        assert_eq!(clusters[0].d_hours(), 22);
        assert_eq!(clusters[1].d_hours(), 24);
        assert_eq!(clusters[2].d_hours(), 48);
    }

    #[test]
    fn near_cap_durations_round_to_cap() {
        // Reconnect delays shave 10–25 minutes off each period.
        let ds: Vec<SimDuration> = (0..20).map(|i| h(23.6 + 0.01 * i as f64)).collect();
        let best = dominant_cluster(&ds, 0.05).unwrap();
        assert_eq!(best.d_hours(), 24);
        assert!((best.fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fractions_sum_to_one() {
        let ds = vec![h(1.0), h(5.0), h(24.0), h(24.1), h(100.0)];
        let clusters = duration_clusters(&ds, 0.05);
        let sum: f64 = clusters.iter().map(|c| c.fraction).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let n: usize = clusters.iter().map(|c| c.count).sum();
        assert_eq!(n, 5);
    }

    #[test]
    fn ttf_distribution_curve() {
        let mut dist = TtfDistribution::new();
        dist.extend(vec![h(24.0); 9]);
        dist.push(h(216.0)); // one long duration, same weight as the 9 short
        assert_eq!(dist.count(), 10);
        let curve = dist.finalize();
        assert_eq!(curve.count(), 10);
        assert!((curve.fraction_le_hours(24.0) - 0.5).abs() < 1e-9);
        assert!((curve.fraction_le_hours(300.0) - 1.0).abs() < 1e-9);
        assert!((curve.fraction_at_mode(24.0, 0.05) - 0.5).abs() < 1e-9);
        let years = curve.total_years();
        assert!((years - (9.0 * 24.0 + 216.0) / (365.0 * 24.0)).abs() < 1e-9);
    }

    #[test]
    fn sampled_curve_matches_fraction_le() {
        let mut dist = TtfDistribution::new();
        dist.extend(vec![h(2.0), h(30.0), h(200.0)]);
        let curve = dist.finalize();
        let samples = curve.sampled_curve(&paper_breakpoints_hours());
        assert_eq!(samples.len(), 9);
        for (x, y) in samples {
            assert!((y - curve.fraction_le_hours(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn finalized_curve_is_shareable_across_threads() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<TtfCurve>();
        let mut dist = TtfDistribution::new();
        dist.extend(vec![h(24.0), h(48.0)]);
        let curve = dist.finalize();
        let full = curve.curve();
        assert_eq!(full.len(), 2);
        assert!((full.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!(curve.fraction_at_mode(1.0, 0.05) == 0.0, "no mass near 1h");
    }

    #[test]
    fn empty_curve_queries_are_zero() {
        let curve = TtfDistribution::new().finalize();
        assert!(curve.is_empty());
        assert_eq!(curve.fraction_le_hours(24.0), 0.0);
        assert_eq!(curve.fraction_at_mode(24.0, 0.05), 0.0);
        assert!(curve.curve().is_empty());
    }

    #[test]
    fn zero_durations_ignored() {
        let mut dist = TtfDistribution::new();
        dist.push(SimDuration::ZERO);
        assert_eq!(dist.count(), 0);
    }
}
