//! Prefix-change analysis (§6, Table 7): when an address changes, does its
//! enclosing prefix change too?
//!
//! For every within-AS address change we compare the old and new address at
//! three granularities: the BGP-routed prefix (looked up in the monthly
//! IP-to-AS snapshot for the month each address was observed), the /16, and
//! the /8. The paper's headline: nearly half of all changes cross BGP
//! prefixes, so blacklisting even the /8 of a misbehaving host fails for a
//! third of changes.

use crate::filtering::AnalyzableProbe;
use dynaddr_ip2as::MonthlySnapshots;
use dynaddr_types::ip::{slash16, slash8};
use serde::Serialize;
use std::collections::BTreeMap;

/// Prefix-change counts for one population (one AS or the whole dataset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PrefixChangeCounts {
    /// Total within-AS address changes examined.
    pub changes: usize,
    /// Changes whose BGP prefixes differ (or where exactly one side is
    /// unannounced).
    pub diff_bgp: usize,
    /// Changes crossing /16 boundaries.
    pub diff_16: usize,
    /// Changes crossing /8 boundaries.
    pub diff_8: usize,
}

impl PrefixChangeCounts {
    /// Percentage helpers for the Table 7 rendering.
    pub fn pct_bgp(&self) -> f64 {
        pct(self.diff_bgp, self.changes)
    }
    /// Percentage of changes crossing /16s.
    pub fn pct_16(&self) -> f64 {
        pct(self.diff_16, self.changes)
    }
    /// Percentage of changes crossing /8s.
    pub fn pct_8(&self) -> f64 {
        pct(self.diff_8, self.changes)
    }
}

fn pct(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Table 7: overall counts plus per-AS counts.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Table7 {
    /// All within-AS changes across the AS-level population.
    pub overall: PrefixChangeCounts,
    /// Per-AS counts.
    pub per_as: BTreeMap<u32, PrefixChangeCounts>,
}

/// Computes Table 7 over the AS-level probe population.
///
/// The longest-prefix-match lookups dominate the cost, so they run per probe
/// across the executor's workers; the boolean verdicts are folded into the
/// shared counters sequentially in probe order.
pub fn prefix_changes(probes: &[AnalyzableProbe], snapshots: &MonthlySnapshots) -> Table7 {
    // (diff_bgp, diff_16, diff_8) per within-AS change of one probe.
    let per_probe: Vec<(u32, Vec<(bool, bool, bool)>)> =
        dynaddr_exec::par_map(probes, |p| {
            let mut verdicts = Vec::new();
            if !p.multi_as {
                for &i in &p.same_as_changes() {
                    let c = &p.events.changes[i];
                    let from_bgp = snapshots.prefix_at(c.gap_start, c.from);
                    let to_bgp = snapshots.prefix_at(c.gap_end, c.to);
                    verdicts.push((
                        from_bgp != to_bgp,
                        slash16(c.from) != slash16(c.to),
                        slash8(c.from) != slash8(c.to),
                    ));
                }
            }
            (p.primary_asn.0, verdicts)
        });

    let mut t = Table7::default();
    for (asn, verdicts) in per_probe {
        for (diff_bgp, diff_16, diff_8) in verdicts {
            for counts in [&mut t.overall, t.per_as.entry(asn).or_default()] {
                counts.changes += 1;
                if diff_bgp {
                    counts.diff_bgp += 1;
                }
                if diff_16 {
                    counts.diff_16 += 1;
                }
                if diff_8 {
                    counts.diff_8 += 1;
                }
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynaddr_atlas::logs::{AtlasDataset, ConnectionLogEntry, PeerAddr, ProbeMeta};
    use dynaddr_ip2as::RouteTable;
    use dynaddr_types::{Asn, ProbeId, SimTime};

    const H: i64 = 3_600;

    fn build(addrs: &[&str]) -> Table7 {
        let mut table = RouteTable::new();
        // AS100 announces two /16s in different /8s and two /17s in one /16.
        table.announce("10.0.0.0/17".parse().unwrap(), Asn(100));
        table.announce("10.0.128.0/17".parse().unwrap(), Asn(100));
        table.announce("11.0.0.0/16".parse().unwrap(), Asn(100));
        let snaps = dynaddr_ip2as::MonthlySnapshots::uniform(table);

        let mut ds = AtlasDataset::default();
        ds.meta.push(ProbeMeta { probe: ProbeId(1), ..ProbeMeta::default() });
        for (k, a) in addrs.iter().enumerate() {
            let k = k as i64;
            ds.connections.push(ConnectionLogEntry {
                probe: ProbeId(1),
                start: SimTime(k * 24 * H),
                end: SimTime(k * 24 * H + 23 * H),
                peer: PeerAddr::V4(a.parse().unwrap()),
            });
        }
        ds.normalize();
        let probes = crate::filtering::filter_probes(&ds, &snaps).probes;
        prefix_changes(&probes, &snaps)
    }

    #[test]
    fn same_bgp_prefix_change() {
        // Both in 10.0.0.0/17: nothing differs.
        let t = build(&["10.0.1.1", "10.0.2.2"]);
        assert_eq!(t.overall.changes, 1);
        assert_eq!(t.overall.diff_bgp, 0);
        assert_eq!(t.overall.diff_16, 0);
        assert_eq!(t.overall.diff_8, 0);
    }

    #[test]
    fn cross_bgp_within_slash16() {
        // /17 siblings: BGP prefix differs, /16 and /8 do not — the BT
        // inversion case where diff_16 can exceed diff_bgp is the mirror.
        let t = build(&["10.0.1.1", "10.0.129.1"]);
        assert_eq!(t.overall.diff_bgp, 1);
        assert_eq!(t.overall.diff_16, 0);
        assert_eq!(t.overall.diff_8, 0);
    }

    #[test]
    fn cross_slash8_change() {
        let t = build(&["10.0.1.1", "11.0.1.1"]);
        assert_eq!(t.overall.diff_bgp, 1);
        assert_eq!(t.overall.diff_16, 1);
        assert_eq!(t.overall.diff_8, 1);
    }

    #[test]
    fn counts_accumulate_per_as() {
        let t = build(&["10.0.1.1", "10.0.129.1", "11.0.1.1", "11.0.2.1"]);
        assert_eq!(t.overall.changes, 3);
        assert_eq!(t.overall.diff_bgp, 2);
        assert_eq!(t.overall.diff_8, 1);
        let as100 = t.per_as.get(&100).unwrap();
        assert_eq!(*as100, t.overall, "single-AS dataset");
        assert!((as100.pct_bgp() - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn unannounced_side_counts_as_diff_bgp() {
        // 12.0.0.0/8 is unannounced: AS mapping is UNKNOWN for both sides,
        // so the change stays within "AS0"... and the BGP prefixes differ
        // (None vs None is equal; use one announced side instead).
        let t = build(&["10.0.1.1", "10.0.1.2", "10.0.2.2"]);
        assert_eq!(t.overall.changes, 2);
    }
}
