//! Administrative renumbering detection — the paper's §8 future work.
//!
//! *"In future work, we plan to analyze how much of the observed churn in
//! the address space can be attributed to administrative renumbering."*
//!
//! An administrative renumbering is an ISP moving customers en masse from
//! one prefix to another. Its signature, visible in connection logs alone:
//! within a short window, a large fraction of an AS's probes change address
//! **into a BGP prefix never before observed for that AS** — ordinary churn
//! (periodic renumbering, outages, rotations) shuffles customers *within*
//! the long-known pool prefixes.
//!
//! The detector keeps, per AS, the set of prefixes seen so far (after a
//! warm-up period, since everything is novel on day one), marks
//! novel-prefix changes, and reports windows where enough distinct probes
//! made one.

use crate::filtering::AnalyzableProbe;
use dynaddr_ip2as::MonthlySnapshots;
use dynaddr_types::{Prefix, ProbeId, SimDuration, SimTime};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};


/// Detector parameters.
#[derive(Debug, Clone)]
pub struct AdminConfig {
    /// Observations earlier than this are used only to learn the AS's
    /// prefix inventory, never flagged (everything is novel at the start).
    pub warmup: SimDuration,
    /// Window within which novel-prefix changes must cluster.
    pub window: SimDuration,
    /// Minimum distinct probes making a novel-prefix change in the window.
    pub min_probes: usize,
    /// Minimum fraction of the AS's analyzable probes involved.
    pub min_fraction: f64,
}

impl Default for AdminConfig {
    fn default() -> AdminConfig {
        AdminConfig {
            warmup: SimDuration::from_days(30),
            window: SimDuration::from_days(2),
            min_probes: 3,
            min_fraction: 0.5,
        }
    }
}

/// One detected administrative renumbering event.
#[derive(Debug, Clone, Serialize)]
pub struct AdminEvent {
    /// The renumbering AS.
    pub asn: u32,
    /// First novel-prefix change in the cluster.
    pub start: SimTime,
    /// Last novel-prefix change in the cluster.
    pub end: SimTime,
    /// Distinct probes that moved.
    pub probes: Vec<ProbeId>,
    /// The previously unseen prefixes customers moved into.
    pub new_prefixes: Vec<Prefix>,
}

/// A change into a previously-unseen prefix (detector internals, exposed
/// for the churn-attribution accounting below).
#[derive(Debug, Clone, Copy)]
struct NovelChange {
    probe: ProbeId,
    time: SimTime,
    prefix: Prefix,
}

/// Detects administrative renumbering events across the AS-level population.
pub fn detect_admin_renumbering(
    probes: &[AnalyzableProbe],
    snapshots: &MonthlySnapshots,
    cfg: &AdminConfig,
) -> Vec<AdminEvent> {
    // Gather (time, probe, bgp prefix) observations per AS, in time order.
    let mut per_as: BTreeMap<u32, Vec<(SimTime, ProbeId, Prefix)>> = BTreeMap::new();
    let mut probes_per_as: BTreeMap<u32, usize> = BTreeMap::new();
    let mut earliest: BTreeMap<u32, SimTime> = BTreeMap::new();
    for p in probes {
        if p.multi_as {
            continue;
        }
        let asn = p.primary_asn.0;
        *probes_per_as.entry(asn).or_insert(0) += 1;
        let obs = per_as.entry(asn).or_default();
        for e in &p.entries {
            let Some(addr) = e.peer.v4() else { continue };
            if let Some(prefix) = snapshots.prefix_at(e.start, addr) {
                obs.push((e.start, p.probe(), prefix));
                let first = earliest.entry(asn).or_insert(e.start);
                if e.start < *first {
                    *first = e.start;
                }
            }
        }
    }

    let mut events = Vec::new();
    for (asn, mut obs) in per_as {
        obs.sort_by_key(|(t, p, _)| (*t, *p));
        let Some(&first_seen) = earliest.get(&asn) else { continue };
        let warmup_end = first_seen + cfg.warmup;

        // First pass: when was each prefix first observed for this AS?
        let mut first_seen: BTreeMap<Prefix, SimTime> = BTreeMap::new();
        for (t, _, prefix) in &obs {
            first_seen.entry(*prefix).or_insert(*t);
        }
        // Second pass: an observation is a *novel-prefix* one when its
        // prefix only appeared for this AS within the last window (and
        // after warm-up) — this captures every customer moved by the
        // migration, not just the first one in.
        let mut novel: Vec<NovelChange> = Vec::new();
        for (t, probe, prefix) in obs {
            let born = first_seen[&prefix];
            if born > warmup_end && t - born <= cfg.window {
                novel.push(NovelChange { probe, time: t, prefix });
            }
        }

        // Cluster novel changes into windows; distinct probes per cluster.
        let total = probes_per_as.get(&asn).copied().unwrap_or(0);
        let mut i = 0usize;
        while i < novel.len() {
            let start = novel[i].time;
            let mut j = i;
            while j + 1 < novel.len() && novel[j + 1].time - start <= cfg.window {
                j += 1;
            }
            let cluster = &novel[i..=j];
            let mut moved: BTreeSet<ProbeId> = BTreeSet::new();
            let mut prefixes: BTreeSet<Prefix> = BTreeSet::new();
            for n in cluster {
                moved.insert(n.probe);
                prefixes.insert(n.prefix);
            }
            if moved.len() >= cfg.min_probes
                && total > 0
                && moved.len() as f64 / total as f64 >= cfg.min_fraction
            {
                events.push(AdminEvent {
                    asn,
                    start,
                    end: cluster.last().expect("non-empty").time,
                    probes: moved.into_iter().collect(),
                    new_prefixes: prefixes.into_iter().collect(),
                });
            }
            i = j + 1;
        }
    }
    events
}

/// Churn attribution (§8): of all observed address changes, how many are
/// explained by detected administrative events vs ordinary churn.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ChurnAttribution {
    /// All within-AS address changes examined.
    pub total_changes: usize,
    /// Changes that fall inside a detected administrative window (same AS).
    pub administrative: usize,
}

impl ChurnAttribution {
    /// Fraction of churn attributable to administrative renumbering.
    pub fn admin_fraction(&self) -> f64 {
        if self.total_changes == 0 {
            0.0
        } else {
            self.administrative as f64 / self.total_changes as f64
        }
    }
}

/// Attributes each change to administrative events or ordinary churn.
pub fn attribute_churn(
    probes: &[AnalyzableProbe],
    events: &[AdminEvent],
) -> ChurnAttribution {
    let slack = SimDuration::from_hours(1);
    let mut attribution = ChurnAttribution::default();
    for p in probes {
        if p.multi_as {
            continue;
        }
        for &i in &p.same_as_changes() {
            let c = &p.events.changes[i];
            attribution.total_changes += 1;
            let is_admin = events.iter().any(|e| {
                e.asn == p.primary_asn.0
                    && c.gap_end >= e.start - slack
                    && c.gap_start <= e.end + slack
            });
            if is_admin {
                attribution.administrative += 1;
            }
        }
    }
    attribution
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynaddr_atlas::logs::{AtlasDataset, ConnectionLogEntry, PeerAddr, ProbeMeta};
    use dynaddr_ip2as::RouteTable;
    use dynaddr_types::time::DAY;
    use dynaddr_types::Asn;

    const H: i64 = 3_600;

    /// Builds an AS with `n` probes churning daily inside two prefixes, then
    /// (optionally) all moving to a third prefix on day 200.
    fn world(n: u32, migrate: bool) -> (AtlasDataset, MonthlySnapshots) {
        let mut table = RouteTable::new();
        table.announce("10.0.0.0/16".parse().unwrap(), Asn(100));
        table.announce("10.1.0.0/16".parse().unwrap(), Asn(100));
        table.announce("10.9.0.0/16".parse().unwrap(), Asn(100));
        let snaps = MonthlySnapshots::uniform(table);

        let mut ds = AtlasDataset::default();
        for id in 1..=n {
            ds.meta.push(ProbeMeta { probe: ProbeId(id), ..ProbeMeta::default() });
            for day in 0..330i64 {
                // Alternate between the two pool prefixes; after day 200,
                // optionally use the new prefix.
                let second = if migrate && day >= 200 { 9 } else { day % 2 };
                let addr = format!("10.{}.{}.{}", second, id, (day % 250) + 1);
                ds.connections.push(ConnectionLogEntry {
                    probe: ProbeId(id),
                    start: SimTime(day * DAY + i64::from(id) * 60),
                    end: SimTime(day * DAY + 23 * H),
                    peer: PeerAddr::V4(addr.parse().unwrap()),
                });
            }
        }
        ds.normalize();
        (ds, snaps)
    }

    #[test]
    fn detects_en_masse_migration() {
        let (ds, snaps) = world(6, true);
        let probes = crate::filtering::filter_probes(&ds, &snaps).probes;
        let events = detect_admin_renumbering(&probes, &snaps, &AdminConfig::default());
        assert_eq!(events.len(), 1, "{events:?}");
        let e = &events[0];
        assert_eq!(e.asn, 100);
        assert_eq!(e.probes.len(), 6);
        assert_eq!(e.start.day_of_year(), 200);
        assert_eq!(e.new_prefixes, vec!["10.9.0.0/16".parse().unwrap()]);
    }

    #[test]
    fn ordinary_churn_raises_no_events() {
        let (ds, snaps) = world(6, false);
        let probes = crate::filtering::filter_probes(&ds, &snaps).probes;
        let events = detect_admin_renumbering(&probes, &snaps, &AdminConfig::default());
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn warmup_suppresses_startup_novelty() {
        // Without warm-up, the first sighting of the second pool prefix
        // would look like a migration.
        let (ds, snaps) = world(6, false);
        let probes = crate::filtering::filter_probes(&ds, &snaps).probes;
        let cfg = AdminConfig { warmup: SimDuration::ZERO, ..AdminConfig::default() };
        let events = detect_admin_renumbering(&probes, &snaps, &cfg);
        assert!(
            !events.is_empty(),
            "zero warm-up must false-positive on startup (demonstrating why warm-up exists)"
        );
    }

    #[test]
    fn churn_attribution_counts_window_changes() {
        let (ds, snaps) = world(6, true);
        let probes = crate::filtering::filter_probes(&ds, &snaps).probes;
        let events = detect_admin_renumbering(&probes, &snaps, &AdminConfig::default());
        let att = attribute_churn(&probes, &events);
        assert!(att.total_changes > 1_500);
        // Daily churn dominates; the single migration is a sliver.
        assert!(att.administrative >= 6, "attributed {}", att.administrative);
        assert!(att.admin_fraction() < 0.05);
    }

    #[test]
    fn min_fraction_gates_partial_moves() {
        let (ds, snaps) = world(8, true);
        let probes = crate::filtering::filter_probes(&ds, &snaps).probes;
        // Demand everyone moves: still passes (all 8 moved).
        let cfg = AdminConfig { min_fraction: 1.0, ..AdminConfig::default() };
        assert_eq!(detect_admin_renumbering(&probes, &snaps, &cfg).len(), 1);
        // Demand more probes than exist: gated.
        let cfg = AdminConfig { min_probes: 20, ..AdminConfig::default() };
        assert!(detect_admin_renumbering(&probes, &snaps, &cfg).is_empty());
    }
}
