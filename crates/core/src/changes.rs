//! Address-change and address-duration extraction from connection logs
//! (§3.1, Table 1).
//!
//! An address change is inferred when consecutive connection-log entries of
//! a probe carry different peer addresses: the change happened somewhere in
//! the gap between the end of one connection and the start of the next. An
//! *address span* is the maximal run of consecutive entries sharing one
//! address; its duration (last end − first start) is only meaningful when
//! the span is bounded by observed changes on both sides — the first and
//! last spans of a probe have unknown durations, exactly as in Table 1.

use dynaddr_atlas::logs::{testing_address, ConnectionLogEntry};
use dynaddr_types::{ProbeId, SimDuration, SimTime};
use std::net::Ipv4Addr;

/// One inferred address change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressChange {
    /// The probe.
    pub probe: ProbeId,
    /// End of the last connection using the old address.
    pub gap_start: SimTime,
    /// Start of the first connection using the new address.
    pub gap_end: SimTime,
    /// The old address.
    pub from: Ipv4Addr,
    /// The new address.
    pub to: Ipv4Addr,
}

/// A maximal run of connections sharing one address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressSpan {
    /// The probe.
    pub probe: ProbeId,
    /// The address held.
    pub addr: Ipv4Addr,
    /// Start of the first connection with this address.
    pub start: SimTime,
    /// End of the last connection with this address.
    pub end: SimTime,
    /// Whether the span is bounded by observed changes on both sides, i.e.
    /// its duration is a true address duration.
    pub complete: bool,
}

impl AddressSpan {
    /// The measured duration (meaningful only when `complete`).
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// An inter-connection gap: the window in which the TCP connection to the
/// controller was down. Every address change lives in a gap, but most gaps
/// carry no change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gap {
    /// The probe.
    pub probe: ProbeId,
    /// End of the earlier connection.
    pub start: SimTime,
    /// Start of the later connection.
    pub end: SimTime,
    /// Whether the address differed across the gap.
    pub address_changed: bool,
}

/// Extraction results for one probe.
#[derive(Debug, Clone, Default)]
pub struct ProbeEvents {
    /// Observed address changes, in time order.
    pub changes: Vec<AddressChange>,
    /// Address spans, in time order.
    pub spans: Vec<AddressSpan>,
    /// All inter-connection gaps, in time order.
    pub gaps: Vec<Gap>,
    /// Whether a leading entry from the RIPE testing address was removed.
    pub had_testing_entry: bool,
}

impl ProbeEvents {
    /// Durations of all complete spans.
    pub fn durations(&self) -> Vec<SimDuration> {
        self.spans
            .iter()
            .filter(|s| s.complete)
            .map(|s| s.duration())
            .collect()
    }
}

/// Removes leading connection-log entries from the RIPE NCC testing address
/// 193.0.0.78 (§3.3). Returns whether anything was removed.
pub fn strip_testing_entries(entries: &mut Vec<ConnectionLogEntry>) -> bool {
    let testing = testing_address();
    let lead = entries
        .iter()
        .take_while(|e| e.peer.v4() == Some(testing))
        .count();
    if lead > 0 {
        entries.drain(..lead);
        true
    } else {
        false
    }
}

/// Incremental change/span/gap extractor for one probe: the state machine
/// behind [`extract_events`], usable one entry at a time.
///
/// Feed IPv4 entries in start-time order with [`push`](Self::push); call
/// [`finish`](Self::finish) to seal the trailing span. The machine carries
/// only the open span (start, end, address, left-bound flag) between pushes,
/// so a resident daemon can hold one per probe at O(1) state beyond the
/// emitted events. Replaying a full entry sequence through it yields the
/// identical [`ProbeEvents`] the batch scan produces.
#[derive(Debug, Clone, Default)]
pub struct EventExtractor {
    events: ProbeEvents,
    /// Open-span state; `None` until the first entry arrives.
    open: Option<OpenSpan>,
}

#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    probe: ProbeId,
    start: SimTime,
    end: SimTime,
    addr: Ipv4Addr,
    has_left_bound: bool,
}

impl EventExtractor {
    /// A fresh extractor with no entries seen.
    pub fn new() -> EventExtractor {
        EventExtractor::default()
    }

    /// Feeds the next connection-log entry (IPv4, start-time order).
    pub fn push(&mut self, e: &ConnectionLogEntry) {
        let next_addr = e.peer.v4().expect("v4 entries only");
        let Some(span) = self.open.as_mut() else {
            self.open = Some(OpenSpan {
                probe: e.probe,
                start: e.start,
                end: e.end,
                addr: next_addr,
                has_left_bound: false,
            });
            return;
        };
        debug_assert_eq!(span.probe, e.probe);
        let changed = next_addr != span.addr;
        self.events.gaps.push(Gap {
            probe: span.probe,
            start: span.end,
            end: e.start,
            address_changed: changed,
        });
        if changed {
            self.events.changes.push(AddressChange {
                probe: span.probe,
                gap_start: span.end,
                gap_end: e.start,
                from: span.addr,
                to: next_addr,
            });
            self.events.spans.push(AddressSpan {
                probe: span.probe,
                addr: span.addr,
                start: span.start,
                end: span.end,
                complete: span.has_left_bound,
            });
            span.start = e.start;
            span.addr = next_addr;
            span.has_left_bound = true;
        }
        span.end = e.end;
    }

    /// The changes emitted so far (grows as entries are pushed).
    pub fn changes(&self) -> &[AddressChange] {
        &self.events.changes
    }

    /// The gaps emitted so far.
    pub fn gaps(&self) -> &[Gap] {
        &self.events.gaps
    }

    /// Seals the trailing span (never right-bounded) and returns the
    /// extraction results.
    pub fn finish(mut self) -> ProbeEvents {
        if let Some(span) = self.open.take() {
            self.events.spans.push(AddressSpan {
                probe: span.probe,
                addr: span.addr,
                start: span.start,
                end: span.end,
                complete: false,
            });
        }
        self.events
    }
}

/// Extracts changes, spans, and gaps from one probe's IPv4 connection-log
/// entries (already sorted by start time; non-IPv4 entries must be removed
/// beforehand — see the filtering module for the dual-stack rationale).
/// Batch driver over [`EventExtractor`].
pub fn extract_events(entries: &[ConnectionLogEntry]) -> ProbeEvents {
    debug_assert!(entries.windows(2).all(|p| p[0].probe == p[1].probe));
    let mut m = EventExtractor::new();
    for e in entries {
        m.push(e);
    }
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynaddr_atlas::logs::PeerAddr;

    fn entry(start: i64, end: i64, addr: &str) -> ConnectionLogEntry {
        ConnectionLogEntry {
            probe: ProbeId(206),
            start: SimTime(start),
            end: SimTime(end),
            peer: PeerAddr::V4(addr.parse().unwrap()),
        }
    }

    const H: i64 = 3_600;

    #[test]
    fn empty_input() {
        let ev = extract_events(&[]);
        assert!(ev.changes.is_empty());
        assert!(ev.spans.is_empty());
        assert!(ev.gaps.is_empty());
    }

    #[test]
    fn single_entry_has_one_incomplete_span() {
        let ev = extract_events(&[entry(0, 10 * H, "10.0.0.1")]);
        assert!(ev.changes.is_empty());
        assert_eq!(ev.spans.len(), 1);
        assert!(!ev.spans[0].complete);
        assert!(ev.durations().is_empty());
    }

    #[test]
    fn table1_shape_seven_changes_six_durations() {
        // Mirrors the paper's Table 1: 8 entries, 7 changes, but only the
        // middle 6 spans have known durations.
        let addrs = [
            "91.55.174.103",
            "91.55.169.37",
            "91.55.132.252",
            "91.55.155.115",
            "91.55.141.95",
            "91.55.165.167",
            "91.55.163.252",
            "91.55.141.63",
        ];
        let mut entries = Vec::new();
        for (i, a) in addrs.iter().enumerate() {
            let t0 = i as i64 * 24 * H;
            entries.push(entry(t0, t0 + 23 * H, a));
        }
        let ev = extract_events(&entries);
        assert_eq!(ev.changes.len(), 7);
        assert_eq!(ev.spans.len(), 8);
        assert_eq!(ev.durations().len(), 6);
        assert!(!ev.spans[0].complete, "first duration unknown");
        assert!(!ev.spans[7].complete, "last duration unknown");
        for d in ev.durations() {
            assert_eq!(d, SimDuration::from_hours(23));
        }
    }

    #[test]
    fn consecutive_same_address_entries_merge() {
        let entries = vec![
            entry(0, 5 * H, "10.0.0.1"),
            entry(5 * H + 60, 10 * H, "10.0.0.1"),
            entry(10 * H + 60, 20 * H, "10.0.0.2"),
            entry(20 * H + 60, 30 * H, "10.0.0.3"),
        ];
        let ev = extract_events(&entries);
        assert_eq!(ev.changes.len(), 2);
        assert_eq!(ev.spans.len(), 3);
        // The merged first span runs from the first entry's start to the
        // second entry's end.
        assert_eq!(ev.spans[0].start, SimTime(0));
        assert_eq!(ev.spans[0].end, SimTime(10 * H));
        // Middle span is the only complete one.
        let complete: Vec<_> = ev.spans.iter().filter(|s| s.complete).collect();
        assert_eq!(complete.len(), 1);
        assert_eq!(complete[0].addr, "10.0.0.2".parse::<Ipv4Addr>().unwrap());
        assert_eq!(complete[0].duration(), SimDuration::from_secs(20 * H - (10 * H + 60)));
    }

    #[test]
    fn gaps_cover_every_pair() {
        let entries = vec![
            entry(0, H, "10.0.0.1"),
            entry(H + 100, 2 * H, "10.0.0.1"),
            entry(2 * H + 100, 3 * H, "10.0.0.2"),
        ];
        let ev = extract_events(&entries);
        assert_eq!(ev.gaps.len(), 2);
        assert!(!ev.gaps[0].address_changed);
        assert!(ev.gaps[1].address_changed);
        assert_eq!(ev.gaps[0].start, SimTime(H));
        assert_eq!(ev.gaps[0].end, SimTime(H + 100));
    }

    #[test]
    fn testing_entries_stripped_only_at_front() {
        let mut entries = vec![
            entry(0, 10, "193.0.0.78"),
            entry(100, 200, "10.0.0.1"),
            entry(300, 400, "10.0.0.2"),
        ];
        assert!(strip_testing_entries(&mut entries));
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].peer.v4().unwrap().to_string(), "10.0.0.1");

        let mut no_testing = vec![entry(0, 10, "10.0.0.1")];
        assert!(!strip_testing_entries(&mut no_testing));
        assert_eq!(no_testing.len(), 1);
    }

    #[test]
    fn incremental_extractor_matches_batch_scan() {
        let entries = vec![
            entry(0, H, "10.0.0.1"),
            entry(H + 60, 2 * H, "10.0.0.1"),
            entry(2 * H + 60, 3 * H, "10.0.0.2"),
            entry(3 * H + 60, 4 * H, "10.0.0.1"),
            entry(4 * H + 60, 5 * H, "10.0.0.3"),
        ];
        let batch = extract_events(&entries);
        let mut m = EventExtractor::new();
        for (i, e) in entries.iter().enumerate() {
            m.push(e);
            // Mid-stream views never run ahead of the final results.
            assert!(m.changes().len() <= batch.changes.len());
            assert_eq!(m.gaps().len(), i);
        }
        let inc = m.finish();
        assert_eq!(inc.changes, batch.changes);
        assert_eq!(inc.spans, batch.spans);
        assert_eq!(inc.gaps, batch.gaps);
    }

    #[test]
    fn change_to_same_address_later_counts_as_two_changes() {
        // A→B→A: two changes, and the middle B span is complete.
        let entries = vec![
            entry(0, H, "10.0.0.1"),
            entry(H + 60, 2 * H, "10.0.0.2"),
            entry(2 * H + 60, 3 * H, "10.0.0.1"),
        ];
        let ev = extract_events(&entries);
        assert_eq!(ev.changes.len(), 2);
        assert_eq!(ev.durations().len(), 1);
    }
}
