//! # dynaddr-core
//!
//! The analysis pipeline of *"Reasons Dynamic Addresses Change"*
//! (Padmanabhan et al., IMC 2016) — the paper's primary contribution,
//! reimplemented as a library over the three RIPE-Atlas-style log datasets
//! (`dynaddr-atlas`) and the IP-to-AS substrate (`dynaddr-ip2as`).
//!
//! Stages, in paper order:
//!
//! * [`filtering`] — the Table 2 probe funnel (IPv6-only, dual-stack,
//!   tagged/behavioural multihoming, testing addresses, never-changed,
//!   multi-AS handling);
//! * [`changes`] — address changes, spans, durations, and gaps from
//!   connection logs (§3.1);
//! * [`ttf`] — the total-time-fraction metric and duration clustering
//!   (§4.1);
//! * [`periodic`] — periodic-renumbering classification and Table 5 (§4.4);
//! * [`geo`] — continent/country rollups (Figs. 1 and 3);
//! * [`hourly`] — renumbering synchronization by hour (Figs. 4–5);
//! * [`outages`] — network-outage, reboot, and power-outage detection from
//!   k-root pings and SOS uptime (§3.4–3.6);
//! * [`firmware`] — firmware-reboot spike filtering (Fig. 6, §5.2);
//! * [`assoc`] — outage-to-gap association, conditional change
//!   probabilities, and duration buckets (Figs. 7–9, Table 6);
//! * [`prefixes`] — cross-prefix analysis (Table 7, §6);
//! * [`live`] — the pipeline as incremental per-probe state machines over
//!   an append-only stream, with batch-replay equivalence (the `dynaddrd`
//!   backend);
//! * [`admin`] — administrative-renumbering detection and churn
//!   attribution (the §8 future work, implemented);
//! * [`advisor`] — per-AS address-lifetime advisories, the operational
//!   takeaway for blacklist maintainers and host-tracking researchers;
//! * [`churn`] — daily address-set churn estimation (the CDN-side statistic
//!   the paper's conclusion relates to);
//! * [`pipeline`] — [`pipeline::analyze`], one call from dataset to a full
//!   [`pipeline::AnalysisReport`];
//! * [`report`] — text rendering of every table and figure;
//! * [`stats`] — the small statistics kit underneath.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod advisor;
pub mod assoc;
pub mod changes;
pub mod churn;
pub mod filtering;
pub mod firmware;
pub mod geo;
pub mod hourly;
pub mod live;
pub mod outages;
pub mod periodic;
pub mod pipeline;
pub mod prefixes;
pub mod report;
pub mod stats;
pub mod ttf;

pub use filtering::{
    filter_probes, FilterCounts, FilterReport, ProbeClass, ProbeMachine, StreamingFilter,
};
pub use live::{replay_plan, IncrementalAnalyzer, IngestStats, ProbeView, ReplayRow, ReplayStep};
pub use pipeline::{
    analyze, analyze_streamed, analyze_streamed_batched, AnalysisConfig, AnalysisReport,
};
