//! # dynaddr-daemon
//!
//! The live ingestion daemon behind the `dynaddrd` binary: a resident
//! [`Daemon`] wraps [`dynaddr_core::live::IncrementalAnalyzer`] — the
//! whole paper pipeline as per-probe state machines — behind a mutex, and
//! serves its rolling state over the same Unix-socket protocol `queryd`
//! speaks. `dynaddrd` and `queryd` share one serving front-end
//! ([`dynaddr_query::server`]); only the [`Answerer`] behind it differs.
//!
//! Two ways records arrive:
//!
//! * **Replay** ([`Daemon::replay`]): every record of a `dataset.store`,
//!   stably ordered by arrival time, optionally paced by a rate multiple
//!   of simulated real time ([`Rate`]). This is the CI-pinned path: a full
//!   replay followed by [`Daemon::seal_text`] renders **byte-for-byte**
//!   the report the batch `analyze` binary prints for the same directory.
//! * **Live pushes** ([`Daemon::push_meta`] and friends): the same entry
//!   points, one record at a time, for ingesting a simulator or collector
//!   as it emits.
//!
//! Point queries ([`Request::DaemonSnapshot`], [`Request::DaemonProbe`],
//! [`Request::IngestStats`]) answer from rolling state in O(1)–O(log n)
//! under a brief lock; sealing clones the per-probe machines, so the
//! stream keeps flowing while a report renders. Ingest volume and seal
//! spans flow into `dynaddr-obs` (`daemon.*` counters, `daemon.replay`
//! heartbeats) and from there into the `--trace` sidecar.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dynaddr_atlas::logs::{
    AtlasDataset, ConnectionLogEntry, KrootPingRecord, ProbeMeta, SosUptimeRecord,
};
use dynaddr_core::live::{replay_plan, IncrementalAnalyzer};
use dynaddr_core::pipeline::AnalysisConfig;
use dynaddr_core::report::render_full;
use dynaddr_core::ProbeClass;
use dynaddr_ip2as::MonthlySnapshots;
use dynaddr_query::proto::{DaemonProbeReply, DaemonSnapshotReply, IngestStatsReply};
use dynaddr_query::{Request, Response};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Replay pacing: how fast recorded time is pushed relative to wall time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rate {
    /// No pacing; records are pushed as fast as they apply.
    Max,
    /// `N` seconds of recorded time per wall-clock second.
    Multiplier(f64),
}

impl Rate {
    /// Parses `"max"` or a positive multiplier.
    pub fn parse(s: &str) -> Result<Rate, String> {
        if s.eq_ignore_ascii_case("max") {
            return Ok(Rate::Max);
        }
        match s.parse::<f64>() {
            Ok(m) if m > 0.0 && m.is_finite() => Ok(Rate::Multiplier(m)),
            _ => Err(format!("--rate wants \"max\" or a positive number, got {s:?}")),
        }
    }
}

/// How many records are applied per lock acquisition during an unpaced
/// replay — large enough to keep the lock cheap, small enough that point
/// queries never wait noticeably.
const REPLAY_CHUNK: usize = 256;

/// The resident daemon state: the incremental analyzer plus the ingest
/// bookkeeping the wire protocol reports.
pub struct Daemon {
    live: Mutex<IncrementalAnalyzer>,
    cfg: AnalysisConfig,
    started: Instant,
    rows_planned: AtomicU64,
    rows_ingested: AtomicU64,
    sealed: AtomicBool,
}

fn class_code(c: ProbeClass) -> u8 {
    match c {
        ProbeClass::Ipv6Only => 0,
        ProbeClass::DualStack => 1,
        ProbeClass::Tagged => 2,
        ProbeClass::Multihomed => 3,
        ProbeClass::TestingOnly => 4,
        ProbeClass::NeverChanged => 5,
        ProbeClass::Analyzable => 6,
    }
}

impl Daemon {
    /// An empty daemon over the given IP-to-AS snapshots and analysis
    /// configuration (the same `AnalysisConfig` the batch `analyze` run
    /// would use, so sealed reports are comparable).
    pub fn new(snapshots: MonthlySnapshots, cfg: AnalysisConfig) -> Daemon {
        Daemon {
            live: Mutex::new(IncrementalAnalyzer::new(snapshots)),
            cfg,
            started: Instant::now(),
            rows_planned: AtomicU64::new(0),
            rows_ingested: AtomicU64::new(0),
            sealed: AtomicBool::new(false),
        }
    }

    /// Introduces one probe (live ingestion entry point).
    pub fn push_meta(&self, meta: &ProbeMeta) {
        self.live.lock().unwrap().push_meta(meta);
    }

    /// Feeds one connection-log entry (live ingestion entry point).
    pub fn push_connection(&self, e: &ConnectionLogEntry) {
        self.live.lock().unwrap().push_connection(e);
        self.rows_ingested.fetch_add(1, Ordering::Relaxed);
    }

    /// Feeds one k-root ping record (live ingestion entry point).
    pub fn push_kroot(&self, r: &KrootPingRecord) {
        self.live.lock().unwrap().push_kroot(r);
        self.rows_ingested.fetch_add(1, Ordering::Relaxed);
    }

    /// Feeds one SOS-uptime record (live ingestion entry point).
    pub fn push_uptime(&self, r: &SosUptimeRecord) {
        self.live.lock().unwrap().push_uptime(r);
        self.rows_ingested.fetch_add(1, Ordering::Relaxed);
    }

    /// Replays a whole dataset in arrival order: all meta rows first, then
    /// every record, paced by `rate`. Point queries interleave freely —
    /// the lock is released between chunks (unpaced) or records (paced).
    pub fn replay(&self, ds: &AtlasDataset, rate: Rate) {
        let plan = replay_plan(ds);
        self.rows_planned.store(plan.len() as u64, Ordering::Relaxed);
        {
            let mut live = self.live.lock().unwrap();
            for meta in &ds.meta {
                live.push_meta(meta);
            }
        }
        dynaddr_obs::counter_add("daemon.meta_rows", ds.meta.len() as u64);
        let progress = dynaddr_obs::Progress::start("daemon.replay", plan.len() as u64);
        match rate {
            Rate::Max => {
                for chunk in plan.chunks(REPLAY_CHUNK) {
                    let mut live = self.live.lock().unwrap();
                    for step in chunk {
                        live.apply(ds, step.row);
                    }
                    drop(live);
                    self.rows_ingested.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                    dynaddr_obs::counter_add("daemon.rows_ingested", chunk.len() as u64);
                    progress.add(chunk.len() as u64);
                }
            }
            Rate::Multiplier(m) => {
                let Some(first) = plan.first() else {
                    progress.finish();
                    return;
                };
                let origin = first.time.0;
                let wall_start = Instant::now();
                for step in &plan {
                    let due = Duration::from_secs_f64(
                        ((step.time.0 - origin).max(0) as f64) / m,
                    );
                    let elapsed = wall_start.elapsed();
                    if due > elapsed {
                        std::thread::sleep(due - elapsed);
                    }
                    self.live.lock().unwrap().apply(ds, step.row);
                    self.rows_ingested.fetch_add(1, Ordering::Relaxed);
                    dynaddr_obs::counter_add("daemon.rows_ingested", 1);
                    progress.add(1);
                }
            }
        }
        progress.finish();
    }

    /// Seals a snapshot of the live stream into the full rendered report —
    /// the exact text the batch `analyze` binary prints, once the stream
    /// is complete. The live state keeps ingesting afterwards.
    pub fn seal_text(&self) -> String {
        let report = {
            let live = self.live.lock().unwrap();
            live.seal(&self.cfg)
        };
        self.sealed.store(true, Ordering::Relaxed);
        dynaddr_obs::counter_add("daemon.seals", 1);
        render_full(&report, &self.cfg.as_names)
    }

    /// The analysis configuration sealed reports use.
    pub fn config(&self) -> &AnalysisConfig {
        &self.cfg
    }

    /// The rolling funnel + event totals, as the wire reports them.
    pub fn snapshot_reply(&self) -> DaemonSnapshotReply {
        let live = self.live.lock().unwrap();
        let c = live.rolling_counts();
        let s = live.stats();
        DaemonSnapshotReply {
            total: c.total as u64,
            ipv6_only: c.ipv6_only as u64,
            dual_stack: c.dual_stack as u64,
            tagged: c.tagged as u64,
            multihomed: c.multihomed as u64,
            testing_only: c.testing_only as u64,
            never_changed: c.never_changed as u64,
            analyzable_geo: c.analyzable_geo as u64,
            multi_as: c.multi_as as u64,
            analyzable_as: c.analyzable_as as u64,
            changes: s.changes,
            gaps: s.gaps,
            network_outages: s.network_outages,
            reboots: s.reboots,
            frontier_secs: s.frontier_secs,
            probes_tracked: live.probes_tracked() as u64,
            sealed: self.sealed.load(Ordering::Relaxed),
        }
    }

    /// One probe's rolling state, if introduced.
    pub fn probe_reply(&self, id: u32) -> Option<DaemonProbeReply> {
        let view = self.live.lock().unwrap().probe_view(id)?;
        Some(DaemonProbeReply {
            probe: id,
            class: class_code(view.class),
            multi_as: view.multi_as,
            entries: view.entries as u64,
            changes: view.changes as u64,
            gaps: view.gaps as u64,
            network_outages: view.network_outages as u64,
            reboots: view.reboots as u64,
            had_testing: view.had_testing,
        })
    }

    /// The ingest counters and replay progress, as the wire reports them.
    pub fn ingest_reply(&self) -> IngestStatsReply {
        let stats = self.live.lock().unwrap().stats().clone();
        IngestStatsReply {
            meta_rows: stats.meta_rows,
            connection_rows: stats.connection_rows,
            kroot_rows: stats.kroot_rows,
            uptime_rows: stats.uptime_rows,
            unknown_probe_rows: stats.unknown_probe_rows,
            frontier_secs: stats.frontier_secs,
            rows_ingested: self.rows_ingested.load(Ordering::Relaxed),
            rows_planned: self.rows_planned.load(Ordering::Relaxed),
            elapsed_ms: self.started.elapsed().as_millis() as u64,
            sealed: self.sealed.load(Ordering::Relaxed),
        }
    }

    /// Answers one request from the rolling state. Dataset queries belong
    /// to `queryd`; here they are a typed error, not a panic.
    pub fn answer_request(&self, req: &Request) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::DaemonSnapshot => Response::DaemonSnapshot(self.snapshot_reply()),
            Request::DaemonProbe(p) => Response::DaemonProbe(self.probe_reply(p.0)),
            Request::IngestStats => Response::IngestStats(self.ingest_reply()),
            Request::ServerStats => {
                Response::Error("ServerStats is answered by the serving front-end".into())
            }
            _ => Response::Error(
                "dynaddrd serves daemon requests only; dataset queries belong to queryd"
                    .into(),
            ),
        }
    }
}

#[cfg(unix)]
impl dynaddr_query::Answerer for Daemon {
    fn answer(&self, req: &Request) -> Response {
        self.answer_request(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynaddr_atlas::world::{paper_route_tables, paper_world};

    fn small_daemon() -> (Daemon, AtlasDataset) {
        let world = paper_world(0.01, 3);
        let out = dynaddr_atlas::simulate(&world);
        let snaps = paper_route_tables(&world);
        let mut cfg = AnalysisConfig { fig3_min_years: 0.01, ..AnalysisConfig::default() };
        for (asn, policy) in &out.truth.isp_policies {
            cfg.as_names.insert(*asn, policy.name.clone());
        }
        (Daemon::new(snaps, cfg), out.dataset)
    }

    #[test]
    fn replay_then_seal_matches_batch() {
        let (daemon, ds) = small_daemon();
        daemon.replay(&ds, Rate::Max);
        let ingest = daemon.ingest_reply();
        assert_eq!(ingest.rows_ingested, ingest.rows_planned);
        assert!(!ingest.sealed);
        let sealed = daemon.seal_text();
        let snaps = {
            // Rebuild inputs independently for the batch reference.
            let world = paper_world(0.01, 3);
            paper_route_tables(&world)
        };
        let batch = dynaddr_core::pipeline::analyze(&ds, &snaps, daemon.config());
        assert_eq!(sealed, render_full(&batch, &daemon.config().as_names));
        assert!(daemon.ingest_reply().sealed);
    }

    #[test]
    fn snapshot_and_probe_queries_answer_rolling_state() {
        let (daemon, ds) = small_daemon();
        daemon.replay(&ds, Rate::Max);
        let snap = daemon.snapshot_reply();
        assert_eq!(snap.total as usize, ds.meta.len());
        assert_eq!(snap.probes_tracked as usize, ds.meta.len());
        assert!(snap.frontier_secs > 0);
        let some_probe = ds.meta[0].probe.0;
        let view = daemon.probe_reply(some_probe).expect("probe is tracked");
        assert_eq!(view.probe, some_probe);
        assert!(view.class <= 6);
        assert!(daemon.probe_reply(u32::MAX).is_none());
    }

    #[test]
    fn dataset_queries_are_typed_errors() {
        let (daemon, _) = small_daemon();
        assert!(matches!(
            daemon.answer_request(&Request::TopMovers(5)),
            Response::Error(_)
        ));
        assert!(matches!(daemon.answer_request(&Request::Ping), Response::Pong));
    }

    #[test]
    fn rate_parses() {
        assert_eq!(Rate::parse("max").unwrap(), Rate::Max);
        assert_eq!(Rate::parse("MAX").unwrap(), Rate::Max);
        assert_eq!(Rate::parse("1000").unwrap(), Rate::Multiplier(1000.0));
        assert!(Rate::parse("0").is_err());
        assert!(Rate::parse("-3").is_err());
        assert!(Rate::parse("soon").is_err());
    }

    /// End-to-end over a real socket: serve the daemon, replay, and check
    /// the three daemon queries plus the front-end's ServerStats.
    #[cfg(unix)]
    #[test]
    fn daemon_serves_over_unix_socket() {
        use dynaddr_query::{serve, QueryClient};
        use std::sync::Arc;

        let (daemon, ds) = small_daemon();
        let daemon = Arc::new(daemon);
        let sock = std::env::temp_dir()
            .join(format!("dynaddrd-test-{}.sock", std::process::id()));
        let server = serve(Arc::clone(&daemon), &sock).expect("bind");
        let handle = server.handle();
        let srv = std::thread::spawn(move || server.run());

        daemon.replay(&ds, Rate::Max);
        let mut client =
            QueryClient::connect_retry(&sock, Duration::from_secs(5)).expect("connect");
        match client.request(&Request::DaemonSnapshot).unwrap() {
            Response::DaemonSnapshot(s) => {
                assert_eq!(s.total as usize, ds.meta.len());
            }
            other => panic!("unexpected {other:?}"),
        }
        match client.request(&Request::IngestStats).unwrap() {
            Response::IngestStats(s) => {
                assert_eq!(s.rows_ingested, s.rows_planned);
            }
            other => panic!("unexpected {other:?}"),
        }
        match client.request(&Request::DaemonProbe(ds.meta[0].probe)).unwrap() {
            Response::DaemonProbe(Some(p)) => assert_eq!(p.probe, ds.meta[0].probe.0),
            other => panic!("unexpected {other:?}"),
        }
        match client.request(&Request::ServerStats).unwrap() {
            Response::ServerStats(s) => {
                assert!(s.requests_total >= 4);
                assert_eq!(s.connections_total, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        match client.request(&Request::TopMovers(3)).unwrap() {
            Response::Error(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        drop(client);
        handle.stop();
        srv.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&sock);
    }
}
