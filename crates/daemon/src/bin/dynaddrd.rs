//! `dynaddrd` — live ingestion daemon over the query wire protocol.
//!
//! ```text
//! dynaddrd --replay FILE [--data DIR] --socket PATH [--rate N|max]
//!          [--report FILE] [--trace FILE] [--threads N]
//!          [--exit-after-replay]
//! dynaddrd query --socket PATH (snapshot|ingest|probe ID|server)
//!          [--wait-sealed SECS]
//! ```
//!
//! Daemon mode binds `--socket`, then replays every record of the store
//! file in arrival order — paced by `--rate` (recorded seconds per
//! wall-clock second; default `max`) — while answering point queries
//! (`DaemonSnapshot`, `DaemonProbe`, `IngestStats`, plus the front-end's
//! `ServerStats`) from the rolling state. When the replay completes, the
//! stream is sealed and the full report is written to `--report`
//! (atomically, via a rename) — byte-for-byte the report `analyze --data`
//! prints for the same directory, which is exactly what the CI smoke
//! diffs. With `--exit-after-replay` the daemon then shuts down; without
//! it, it keeps serving until killed.
//!
//! `--data` names the dataset directory (for `ip2as/` and `names.json`);
//! it defaults to the replay file's parent directory. Query mode is the
//! matching client: it prints one daemon reply human-readably, and
//! `--wait-sealed` polls until the stream is sealed first — the CI hook
//! for "replay finished".

#[cfg(unix)]
fn main() {
    if let Err(e) = run() {
        eprintln!("dynaddrd: {e}");
        std::process::exit(1);
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("dynaddrd: unix sockets are not available on this platform");
    std::process::exit(1);
}

#[cfg(unix)]
fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("query") {
        args.remove(0);
        run_query(args)
    } else {
        run_daemon(args)
    }
}

#[cfg(unix)]
fn run_daemon(args: Vec<String>) -> Result<(), String> {
    use dynaddr_atlas::logs::AtlasDataset;
    use dynaddr_core::pipeline::AnalysisConfig;
    use dynaddr_daemon::{Daemon, Rate};
    use dynaddr_ip2as::MonthlySnapshots;
    use dynaddr_query::serve;
    use std::collections::BTreeMap;
    use std::path::PathBuf;
    use std::sync::Arc;

    let mut replay: Option<PathBuf> = None;
    let mut data: Option<PathBuf> = None;
    let mut socket: Option<PathBuf> = None;
    let mut rate = Rate::Max;
    let mut report: Option<PathBuf> = None;
    let mut exit_after_replay = false;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--replay" => replay = Some(PathBuf::from(value("--replay")?)),
            "--data" => data = Some(PathBuf::from(value("--data")?)),
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--rate" => rate = Rate::parse(&value("--rate")?)?,
            "--report" => report = Some(PathBuf::from(value("--report")?)),
            "--trace" => {
                let path = PathBuf::from(value("--trace")?);
                dynaddr_obs::init_trace(&path).map_err(|e| format!("--trace: {e}"))?;
            }
            "--threads" => dynaddr_exec::set_threads(Some(
                value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?,
            )),
            "--exit-after-replay" => exit_after_replay = true,
            "--help" | "-h" => {
                println!(
                    "usage: dynaddrd --replay FILE [--data DIR] --socket PATH \
                     [--rate N|max] [--report FILE] [--trace FILE] [--threads N] \
                     [--exit-after-replay]\n       \
                     dynaddrd query --socket PATH \
                     (snapshot|ingest|probe ID|server) [--wait-sealed SECS]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let replay_file = replay.ok_or("--replay is required")?;
    let socket = socket.ok_or("--socket is required")?;
    let dir = match data {
        Some(d) => d,
        None => replay_file
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .ok_or("--replay file has no parent directory; pass --data DIR")?
            .to_path_buf(),
    };

    // Mirror `analyze --data DIR` exactly: same snapshots, same config,
    // same names.json handling — the sealed report must diff clean.
    let snaps = MonthlySnapshots::load_dir(&dir.join("ip2as"))
        .map_err(|e| format!("failed to load ip2as snapshots: {e}"))?;
    let mut cfg = AnalysisConfig::default();
    if let Ok(names) = std::fs::read_to_string(dir.join("names.json")) {
        match serde_json::from_str::<BTreeMap<u32, String>>(&names) {
            Ok(parsed) => cfg.as_names = parsed,
            Err(e) => dynaddr_obs::warn!(
                "ignoring unparseable {}: {e}",
                dir.join("names.json").display()
            ),
        }
    }
    let dataset = AtlasDataset::load_dir(&dir)
        .map_err(|e| format!("failed to load dataset: {e}"))?;

    let daemon = Arc::new(Daemon::new(snaps, cfg));
    let server = serve(Arc::clone(&daemon), &socket).map_err(|e| e.to_string())?;
    let handle = server.handle();
    eprintln!(
        "dynaddrd: replaying {} ({} probes) at {:?} — listening on {}",
        replay_file.display(),
        dataset.meta.len(),
        rate,
        socket.display()
    );

    let ingest_daemon = Arc::clone(&daemon);
    let report_path = report.clone();
    let ingest = std::thread::spawn(move || -> Result<(), String> {
        ingest_daemon.replay(&dataset, rate);
        let text = ingest_daemon.seal_text();
        if let Some(path) = &report_path {
            // Atomic publish: the CI smoke polls for this file, so it must
            // never observe a half-written report.
            let tmp = path.with_extension("tmp");
            std::fs::write(&tmp, &text).map_err(|e| format!("{}: {e}", tmp.display()))?;
            std::fs::rename(&tmp, path).map_err(|e| format!("{}: {e}", path.display()))?;
            dynaddr_obs::info!("wrote sealed report to {}", path.display());
        }
        // Make the replay's trace durable now: a daemon is typically
        // killed, not shut down, so waiting for exit would lose the tail.
        dynaddr_obs::flush_trace();
        if exit_after_replay {
            handle.stop();
        }
        Ok(())
    });

    let served = server.run().map_err(|e| e.to_string());
    let ingested = ingest.join().map_err(|_| "ingest thread panicked".to_string())?;
    dynaddr_obs::flush_trace();
    served.and(ingested)
}

#[cfg(unix)]
fn run_query(args: Vec<String>) -> Result<(), String> {
    use dynaddr_query::{QueryClient, Request, Response};
    use std::path::PathBuf;
    use std::time::{Duration, Instant};

    let mut socket: Option<PathBuf> = None;
    let mut wait_sealed: Option<u64> = None;
    let mut what: Option<Request> = None;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--wait-sealed" => {
                wait_sealed = Some(
                    value("--wait-sealed")?
                        .parse()
                        .map_err(|e| format!("--wait-sealed: {e}"))?,
                )
            }
            "snapshot" => what = Some(Request::DaemonSnapshot),
            "ingest" => what = Some(Request::IngestStats),
            "server" => what = Some(Request::ServerStats),
            "probe" => {
                let id = value("probe")?.parse().map_err(|e| format!("probe: {e}"))?;
                what = Some(Request::DaemonProbe(dynaddr_types::ProbeId(id)));
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let socket = socket.ok_or("--socket is required")?;
    let what = what.ok_or("one of snapshot|ingest|probe ID|server is required")?;
    let mut client = QueryClient::connect_retry(&socket, Duration::from_secs(10))
        .map_err(|e| format!("{}: {e}", socket.display()))?;

    if let Some(secs) = wait_sealed {
        let deadline = Instant::now() + Duration::from_secs(secs);
        loop {
            match client.request(&Request::IngestStats).map_err(|e| e.to_string())? {
                Response::IngestStats(s) if s.sealed => break,
                Response::IngestStats(_) => {}
                other => return Err(format!("--wait-sealed: unexpected {other:?}")),
            }
            if Instant::now() >= deadline {
                return Err(format!("--wait-sealed: not sealed after {secs}s"));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    match client.request(&what).map_err(|e| e.to_string())? {
        Response::DaemonSnapshot(s) => {
            println!(
                "snapshot: {} probes ({} tracked), frontier {}s, sealed {}",
                s.total, s.probes_tracked, s.frontier_secs, s.sealed
            );
            println!(
                "  funnel: ipv6_only {}, dual_stack {}, tagged {}, multihomed {}, \
                 testing_only {}, never_changed {}, analyzable_geo {}, multi_as {}, \
                 analyzable_as {}",
                s.ipv6_only,
                s.dual_stack,
                s.tagged,
                s.multihomed,
                s.testing_only,
                s.never_changed,
                s.analyzable_geo,
                s.multi_as,
                s.analyzable_as
            );
            println!(
                "  events: {} changes, {} gaps, {} network outages, {} reboots",
                s.changes, s.gaps, s.network_outages, s.reboots
            );
        }
        Response::IngestStats(s) => {
            println!(
                "ingest: {}/{} rows in {}ms, frontier {}s, sealed {}",
                s.rows_ingested, s.rows_planned, s.elapsed_ms, s.frontier_secs, s.sealed
            );
            println!(
                "  rows: {} meta, {} connection, {} kroot, {} uptime, {} unknown-probe",
                s.meta_rows, s.connection_rows, s.kroot_rows, s.uptime_rows,
                s.unknown_probe_rows
            );
        }
        Response::DaemonProbe(Some(p)) => {
            println!(
                "probe {}: class {}, multi_as {}, {} entries, {} changes, {} gaps, \
                 {} network outages, {} reboots, had_testing {}",
                p.probe, p.class, p.multi_as, p.entries, p.changes, p.gaps,
                p.network_outages, p.reboots, p.had_testing
            );
        }
        Response::DaemonProbe(None) => println!("probe: not tracked"),
        Response::ServerStats(s) => {
            println!(
                "server: up {}s, {} connections, {} requests",
                s.uptime_secs, s.connections_total, s.requests_total
            );
            for (tag, n) in &s.requests_by_tag {
                println!("  tag {tag}: {n}");
            }
        }
        Response::Error(e) => return Err(format!("server said: {e}")),
        other => return Err(format!("unexpected response {other:?}")),
    }
    Ok(())
}
