//! Counters, gauges, and fixed-bucket log2 histograms.
//!
//! Everything merges with commutative, associative u64 operations
//! (addition for counters/histograms, max for gauges), so a metric folded
//! across N workers is bit-identical for any N — the same discipline as
//! `WeightedCdf::merge` in the analysis crate. The global registry is
//! keyed by `&'static str` in a `BTreeMap`, so snapshots iterate in a
//! stable sorted order.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Fixed-bucket log2 histogram over `u64` values.
///
/// Bucket 0 holds the value 0; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i - 1]`. With 65 buckets every `u64` maps to exactly one
/// bucket. `merge` is elementwise addition, so folding per-worker
/// histograms yields identical counts for any worker count or order.
#[derive(Clone, Copy)]
pub struct Histogram {
    counts: [u64; 65],
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        self.sum == other.sum && self.counts == other.counts
    }
}
impl Eq for Histogram {}

impl Histogram {
    pub const fn new() -> Self {
        Histogram { counts: [0; 65], sum: 0 }
    }

    fn bucket(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Upper bound (inclusive) of bucket `i`.
    pub fn bucket_hi(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    pub fn record_n(&mut self, v: u64, n: u64) {
        self.counts[Self::bucket(v)] += n;
        self.sum = self.sum.wrapping_add(v.wrapping_mul(n));
    }

    /// Elementwise addition — associative and commutative, so the result
    /// is independent of merge order and worker count.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }

    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Approximate quantile: upper bound of the bucket containing the
    /// q-th ranked sample. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_hi(i);
            }
        }
        Self::bucket_hi(64)
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs, low to high.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_hi(i), c))
            .collect()
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: BTreeMap::new(),
    gauges: BTreeMap::new(),
    hists: BTreeMap::new(),
});

/// Add `delta` to the named counter.
pub fn counter_add(name: &'static str, delta: u64) {
    let mut r = REGISTRY.lock().unwrap();
    *r.counters.entry(name).or_insert(0) += delta;
}

/// Raise the named gauge to `v` if `v` is larger (high-water mark).
pub fn gauge_max(name: &'static str, v: u64) {
    let mut r = REGISTRY.lock().unwrap();
    let g = r.gauges.entry(name).or_insert(0);
    if v > *g {
        *g = v;
    }
}

/// Set the named gauge to `v` unconditionally (last-write-wins; use only
/// from single-threaded control flow).
pub fn gauge_set(name: &'static str, v: u64) {
    let mut r = REGISTRY.lock().unwrap();
    r.gauges.insert(name, v);
}

/// Record `v` into the named histogram.
pub fn hist_record(name: &'static str, v: u64) {
    let mut r = REGISTRY.lock().unwrap();
    r.hists.entry(name).or_default().record(v);
}

/// Merge a locally-accumulated histogram into the named global one.
/// Preferred on hot paths: accumulate per-worker, merge once.
pub fn hist_merge(name: &'static str, h: &Histogram) {
    let mut r = REGISTRY.lock().unwrap();
    r.hists.entry(name).or_default().merge(h);
}

/// Point-in-time copy of the registry, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(&'static str, u64)>,
    pub gauges: Vec<(&'static str, u64)>,
    pub hists: Vec<(&'static str, Histogram)>,
}

pub fn metrics_snapshot() -> MetricsSnapshot {
    let r = REGISTRY.lock().unwrap();
    MetricsSnapshot {
        counters: r.counters.iter().map(|(&k, &v)| (k, v)).collect(),
        gauges: r.gauges.iter().map(|(&k, &v)| (k, v)).collect(),
        hists: r.hists.iter().map(|(&k, v)| (k, *v)).collect(),
    }
}

/// Clear the registry (tests and benchmark iterations).
pub fn reset_metrics() {
    let mut r = REGISTRY.lock().unwrap();
    r.counters.clear();
    r.gauges.clear();
    r.hists.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket(u64::MAX), 64);
        for i in 1..64 {
            // Every bucket's upper bound maps back into that bucket.
            assert_eq!(Histogram::bucket(Histogram::bucket_hi(i)), i);
        }
    }

    #[test]
    fn record_merge_quantile() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..100u64 {
            a.record(v);
        }
        for v in 100..200u64 {
            b.record(v);
        }
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), 200);
        assert_eq!(merged.sum(), (0..200u64).sum::<u64>());
        assert!(merged.quantile(0.5) >= 63); // median sample is 100 → bucket hi ≥ 127
        assert_eq!(Histogram::new().quantile(0.99), 0);
    }

    #[test]
    fn merge_is_order_independent() {
        let parts: Vec<Histogram> = (0..8u64)
            .map(|w| {
                let mut h = Histogram::new();
                for v in (w * 100)..(w * 100 + 100) {
                    h.record(v * 37 % 1000);
                }
                h
            })
            .collect();
        let mut fwd = Histogram::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Histogram::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn registry_snapshot_sorted() {
        let _g = crate::testlock::LOCK.lock().unwrap();
        reset_metrics();
        counter_add("z.count", 2);
        counter_add("a.count", 1);
        counter_add("z.count", 3);
        gauge_max("g", 5);
        gauge_max("g", 2);
        hist_record("h", 42);
        let snap = metrics_snapshot();
        assert_eq!(snap.counters, vec![("a.count", 1), ("z.count", 5)]);
        assert_eq!(snap.gauges, vec![("g", 5)]);
        assert_eq!(snap.hists.len(), 1);
        assert_eq!(snap.hists[0].1.count(), 1);
        reset_metrics();
        assert!(metrics_snapshot().counters.is_empty());
    }
}
