//! Resident-set-size sampling from `/proc/self/status`.
//!
//! `VmRSS` is the live resident set (heartbeats sample it); `VmHWM` is the
//! process-lifetime high-water mark (reported once at exit as
//! `peak_rss_bytes`). Returns 0 on platforms without procfs.

fn status_field_bytes(key: &str) -> u64 {
    let Ok(s) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in s.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            let kb: u64 = rest
                .trim_start_matches(':')
                .trim()
                .trim_end_matches(" kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Current resident set size in bytes (`VmRSS`).
pub fn rss_bytes() -> u64 {
    status_field_bytes("VmRSS")
}

/// Peak resident set size in bytes (`VmHWM`).
pub fn peak_rss_bytes() -> u64 {
    status_field_bytes("VmHWM")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_is_positive_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(rss_bytes() > 0);
            assert!(peak_rss_bytes() >= rss_bytes() / 2);
        }
    }
}
