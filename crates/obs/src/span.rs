//! RAII stage/sub-stage timers.
//!
//! A [`Span`] records wall-clock duration from creation to drop (or
//! [`Span::finish_secs`]), tagged with its full `parent/child` path from a
//! per-thread nesting stack. Events land in a thread-local buffer; buffers
//! flush into a global list on thread exit or [`take_spans`], which sorts
//! by `(start_us, seq)` so the merged order is deterministic regardless of
//! which worker finished first.
//!
//! Spans measure time, and time is inherently nondeterministic — so spans
//! are telemetry only. Nothing may branch on a span's duration.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Leaf name as passed to [`span`].
    pub name: &'static str,
    /// Slash-joined path of enclosing spans on this thread, e.g.
    /// `"simulate/sim_event_loop"`.
    pub path: String,
    /// Start offset from process epoch, microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// True if this span (or an ancestor) was marked as warm-up work.
    pub warmup: bool,
    /// Arbitrary thread tag (stable within a thread, not across runs).
    pub thread: u64,
    /// Global creation sequence number; tie-breaker for sorting.
    pub seq: u64,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static THREAD_IDS: AtomicU64 = AtomicU64::new(0);
static FINISHED: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Cap on buffered span events; long test runs that never drain would
/// otherwise grow without bound. Overflow increments a counter instead.
const BUFFER_CAP: usize = 1 << 16;

struct ThreadBuf {
    id: u64,
    stack: Vec<&'static str>,
    warmup_depth: usize,
    buf: Vec<SpanEvent>,
}

impl ThreadBuf {
    fn new() -> Self {
        ThreadBuf {
            id: THREAD_IDS.fetch_add(1, Ordering::Relaxed),
            stack: Vec::new(),
            warmup_depth: 0,
            buf: Vec::new(),
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        if !self.buf.is_empty() {
            flush_into_global(&mut self.buf);
        }
    }
}

fn flush_into_global(buf: &mut Vec<SpanEvent>) {
    let mut global = FINISHED.lock().unwrap();
    let room = BUFFER_CAP.saturating_sub(global.len());
    if buf.len() > room {
        DROPPED.fetch_add((buf.len() - room) as u64, Ordering::Relaxed);
        buf.truncate(room);
    }
    global.append(buf);
}

thread_local! {
    static TLS: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

/// Live RAII span. Records on drop; use [`Span::finish_secs`] to also get
/// the elapsed seconds (replacing hand-rolled `Instant` pairs).
pub struct Span {
    name: &'static str,
    path: String,
    start: Instant,
    start_us: u64,
    warmup: bool,
    /// True only for the span whose `.warmup()` call bumped the
    /// thread-local warm-up depth (children inherit `warmup` but not this).
    owns_warmup: bool,
    seq: u64,
    done: bool,
}

/// Open a span named `name`, nested under any span already open on this
/// thread.
pub fn span(name: &'static str) -> Span {
    let start = Instant::now();
    let start_us = start.duration_since(epoch()).as_micros() as u64;
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let (path, warmup) = TLS.with(|tls| {
        let mut t = tls.borrow_mut();
        let path = if t.stack.is_empty() {
            name.to_string()
        } else {
            let mut p = t.stack.join("/");
            p.push('/');
            p.push_str(name);
            p
        };
        t.stack.push(name);
        (path, t.warmup_depth > 0)
    });
    Span { name, path, start, start_us, warmup, owns_warmup: false, seq, done: false }
}

impl Span {
    /// Mark this span (and every span opened inside it) as warm-up work.
    pub fn warmup(mut self) -> Self {
        if !self.warmup {
            TLS.with(|tls| tls.borrow_mut().warmup_depth += 1);
            self.owns_warmup = true;
            self.warmup = true;
        }
        self
    }

    /// Close the span now and return elapsed seconds.
    pub fn finish_secs(mut self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        self.close();
        secs
    }

    fn close(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let dur_us = self.start.elapsed().as_micros() as u64;
        TLS.with(|tls| {
            let mut t = tls.borrow_mut();
            // Spans drop in LIFO order; truncating at our frame also clears
            // any frames a leaked child failed to pop.
            if let Some(pos) = t.stack.iter().rposition(|&n| n == self.name) {
                t.stack.truncate(pos);
            }
            if self.owns_warmup {
                t.warmup_depth = t.warmup_depth.saturating_sub(1);
            }
            let ev = SpanEvent {
                name: self.name,
                path: std::mem::take(&mut self.path),
                start_us: self.start_us,
                dur_us,
                warmup: self.warmup,
                thread: t.id,
                seq: self.seq,
            };
            if t.buf.len() < BUFFER_CAP {
                t.buf.push(ev);
            } else {
                DROPPED.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// Drain all finished spans (this thread's buffer plus the global list),
/// sorted by `(start_us, seq)` for a deterministic merged order. Returns
/// the events and the number dropped to the buffer cap since the last
/// drain.
pub fn take_spans() -> (Vec<SpanEvent>, u64) {
    TLS.with(|tls| {
        let mut t = tls.borrow_mut();
        let mut buf = std::mem::take(&mut t.buf);
        flush_into_global(&mut buf);
    });
    let mut events = std::mem::take(&mut *FINISHED.lock().unwrap());
    events.sort_by_key(|e| (e.start_us, e.seq));
    (events, DROPPED.swap(0, Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The span buffer is global; serialize tests that drain it so parallel
    // test threads cannot interleave events.
    use crate::testlock::LOCK;

    #[test]
    fn nesting_builds_paths_and_drop_order_pops() {
        let _g = LOCK.lock().unwrap();
        let _ = take_spans();
        {
            let _a = span("outer");
            {
                let _b = span("inner");
            }
            let _c = span("sibling");
        }
        let (events, dropped) = take_spans();
        assert_eq!(dropped, 0);
        let paths: Vec<&str> = events.iter().map(|e| e.path.as_str()).collect();
        assert!(paths.contains(&"outer"));
        assert!(paths.contains(&"outer/inner"));
        assert!(paths.contains(&"outer/sibling"));
        // Sorted by (start_us, seq): outer opened first.
        assert_eq!(events[0].path, "outer");
        assert!(events.iter().all(|e| !e.warmup));
    }

    #[test]
    fn warmup_marks_children() {
        let _g = LOCK.lock().unwrap();
        let _ = take_spans();
        {
            let _w = span("warmup").warmup();
            let _child = span("work");
        }
        {
            let _after = span("after");
        }
        let (events, _) = take_spans();
        let find = |p: &str| events.iter().find(|e| e.path == p).unwrap();
        assert!(find("warmup").warmup);
        assert!(find("warmup/work").warmup);
        assert!(!find("after").warmup);
    }

    #[test]
    fn finish_secs_records_once() {
        let _g = LOCK.lock().unwrap();
        let _ = take_spans();
        let s = span("timed");
        let secs = s.finish_secs();
        assert!(secs >= 0.0);
        let (events, _) = take_spans();
        assert_eq!(events.iter().filter(|e| e.name == "timed").count(), 1);
    }

    #[test]
    fn cross_thread_spans_merge() {
        let _g = LOCK.lock().unwrap();
        let _ = take_spans();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = span("worker");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (events, _) = take_spans();
        assert_eq!(events.iter().filter(|e| e.name == "worker").count(), 4);
        // Deterministic order: sorted keys are non-decreasing.
        assert!(events.windows(2).all(|w| (w[0].start_us, w[0].seq) <= (w[1].start_us, w[1].seq)));
    }
}
