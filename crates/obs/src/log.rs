//! Leveled stderr logger.
//!
//! The threshold comes from `DYNADDR_LOG` (`error|warn|info|debug`),
//! parsed once and cached in an atomic; `info` is the default. Lines at
//! or below the threshold go to stderr; when a trace sink is active they
//! are also mirrored into the sidecar as `{"ev":"log",...}` events so a
//! trace file is self-contained.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Severity levels, ordered most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

const LEVEL_UNSET: u8 = 255;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn threshold() -> Level {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw != LEVEL_UNSET {
        return match raw {
            0 => Level::Error,
            1 => Level::Warn,
            3 => Level::Debug,
            _ => Level::Info,
        };
    }
    let lvl = std::env::var("DYNADDR_LOG")
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(Level::Info);
    LEVEL.store(lvl as u8, Ordering::Relaxed);
    lvl
}

/// Override the log threshold programmatically (e.g. from a `-q`/`-v`
/// flag). `None` re-arms the lazy `DYNADDR_LOG` lookup.
pub fn set_log_level(level: Option<Level>) {
    LEVEL.store(level.map(|l| l as u8).unwrap_or(LEVEL_UNSET), Ordering::Relaxed);
}

/// Core logging entry point; use the `error!`/`warn!`/`info!`/`debug!`
/// macros rather than calling this directly.
pub fn log_at(level: Level, args: fmt::Arguments<'_>) {
    if level > threshold() {
        return;
    }
    let msg = args.to_string();
    match level {
        Level::Error => eprintln!("error: {msg}"),
        Level::Warn => eprintln!("warning: {msg}"),
        Level::Info | Level::Debug => eprintln!("{msg}"),
    }
    if crate::trace::trace_enabled() {
        crate::trace::emit_event(
            "log",
            &[
                ("level", crate::trace::Value::Str(level.as_str())),
                ("msg", crate::trace::Value::OwnedStr(msg)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse(" debug "), Some(Level::Debug));
        assert_eq!(Level::parse("nope"), None);
    }
}
