//! Periodic progress heartbeat for long runs.
//!
//! A [`Progress`] tracks completed units with a lock-free counter;
//! [`Progress::add`] occasionally (default every 5 s, tunable via
//! `DYNADDR_HEARTBEAT_SECS`) emits a heartbeat — rate, ETA, live RSS — to
//! the leveled logger and, when tracing is on, the JSONL sidecar.
//! [`Progress::finish`] always writes a final trace event so a traced run
//! is guaranteed at least one `heartbeat` line per labeled phase.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

pub struct Progress {
    label: &'static str,
    total: u64,
    done: AtomicU64,
    start: Instant,
    interval_s: f64,
    last_emit: Mutex<Instant>,
}

fn heartbeat_interval() -> f64 {
    std::env::var("DYNADDR_HEARTBEAT_SECS")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(5.0)
}

impl Progress {
    /// Start tracking `total` units of work under `label` (0 = unknown
    /// total; ETA is omitted).
    pub fn start(label: &'static str, total: u64) -> Self {
        let now = Instant::now();
        Progress {
            label,
            total,
            done: AtomicU64::new(0),
            start: now,
            interval_s: heartbeat_interval(),
            last_emit: Mutex::new(now),
        }
    }

    /// Record `n` completed units; emits a heartbeat if the interval has
    /// elapsed. Safe to call from worker threads.
    pub fn add(&self, n: u64) {
        let done = self.done.fetch_add(n, Ordering::Relaxed) + n;
        // Cheap time check outside the lock; the lock only arbitrates which
        // thread emits.
        let mut last = match self.last_emit.try_lock() {
            Ok(g) => g,
            Err(_) => return,
        };
        if last.elapsed().as_secs_f64() >= self.interval_s {
            *last = Instant::now();
            drop(last);
            self.emit(done, false);
        }
    }

    /// Emit the final heartbeat. The trace event is unconditional; the
    /// stderr line appears only for runs long enough to have heartbeated.
    pub fn finish(&self) {
        let done = self.done.load(Ordering::Relaxed);
        self.emit(done, true);
    }

    fn emit(&self, done: u64, fin: bool) {
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 { done as f64 / elapsed } else { 0.0 };
        let eta_s = if self.total > done && rate > 0.0 {
            (self.total - done) as f64 / rate
        } else {
            0.0
        };
        let rss = crate::rss::rss_bytes();
        if !fin || elapsed >= self.interval_s {
            if self.total > 0 {
                crate::info!(
                    "{}: {}/{} ({:.0}/s, eta {:.0}s, rss {} MB)",
                    self.label,
                    done,
                    self.total,
                    rate,
                    eta_s,
                    rss / (1024 * 1024)
                );
            } else {
                crate::info!(
                    "{}: {} ({:.0}/s, rss {} MB)",
                    self.label,
                    done,
                    rate,
                    rss / (1024 * 1024)
                );
            }
        }
        if crate::trace::trace_enabled() {
            crate::trace::emit_event(
                "heartbeat",
                &[
                    ("label", crate::trace::Value::Str(self.label)),
                    ("done", crate::trace::Value::U64(done)),
                    ("total", crate::trace::Value::U64(self.total)),
                    ("elapsed_s", crate::trace::Value::F64(elapsed)),
                    ("rate", crate::trace::Value::F64(rate)),
                    ("eta_s", crate::trace::Value::F64(eta_s)),
                    ("rss_bytes", crate::trace::Value::U64(rss)),
                    ("final", crate::trace::Value::Bool(fin)),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_across_threads() {
        let p = Progress::start("test_progress", 100);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..25 {
                        p.add(1);
                    }
                });
            }
        });
        assert_eq!(p.done.load(Ordering::Relaxed), 100);
        p.finish();
    }

    #[test]
    fn finish_emits_trace_event() {
        let _g = crate::testlock::LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("dynaddr_obs_hb_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hb.jsonl");
        crate::trace::init_trace(&path).unwrap();
        let p = Progress::start("hb_phase", 10);
        p.add(10);
        p.finish();
        crate::trace::disable_trace();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"ev\":\"heartbeat\""));
        assert!(body.contains("\"label\":\"hb_phase\""));
        assert!(body.contains("\"final\":true"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
