//! `dynaddr-obs` — structured observability for the dynaddr pipeline.
//!
//! Std-only, zero dependencies, and strictly off the output path: nothing
//! in this crate may influence report bytes, store bytes, or stage
//! orderings. Everything here is either append-only telemetry (spans,
//! counters, histograms) merged with commutative u64 adds — bit-identical
//! regardless of worker count — or side-channel emission (stderr logging,
//! heartbeats, the `--trace` JSONL sidecar).
//!
//! Layers:
//! - [`span`]: RAII stage timers with parent nesting, per-thread buffers,
//!   and a deterministic global merge (`take_spans` sorts by start, seq).
//! - [`metrics`]: global counters, gauges, and fixed-bucket log2
//!   [`Histogram`]s whose `merge` is elementwise u64 addition.
//! - [`log`]: leveled stderr logger driven by `DYNADDR_LOG`.
//! - [`progress`]: periodic heartbeat (rate, ETA, live RSS) for long runs.
//! - [`trace`]: JSONL sidecar writer (`--trace <file>`); every span, metric
//!   snapshot, heartbeat, and log line becomes one JSON object per line.

pub mod log;
pub mod metrics;
pub mod progress;
pub mod rss;
pub mod span;
pub mod trace;

pub use crate::log::{log_at, set_log_level, Level};
pub use metrics::{
    counter_add, gauge_max, gauge_set, hist_merge, hist_record, metrics_snapshot, reset_metrics,
    Histogram, MetricsSnapshot,
};
pub use progress::Progress;
pub use rss::{peak_rss_bytes, rss_bytes};
pub use span::{span, take_spans, Span, SpanEvent};
pub use trace::{
    disable_trace, emit_event, flush_trace, init_trace, trace_enabled, Value,
};

/// Serializes tests that touch crate-global state (span buffer, metrics
/// registry, trace sink) across test modules.
#[cfg(test)]
pub(crate) mod testlock {
    pub static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
}

/// Log at `error` level (always printed unless logging is disabled).
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log_at($crate::Level::Error, format_args!($($arg)*)) };
}

/// Log at `warn` level.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log_at($crate::Level::Warn, format_args!($($arg)*)) };
}

/// Log at `info` level (the default threshold).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log_at($crate::Level::Info, format_args!($($arg)*)) };
}

/// Log at `debug` level (enabled via `DYNADDR_LOG=debug`).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log_at($crate::Level::Debug, format_args!($($arg)*)) };
}
