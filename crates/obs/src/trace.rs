//! JSONL trace sidecar.
//!
//! `init_trace(path)` opens a buffered writer; every event becomes one
//! JSON object per line with an `"ev"` discriminant and a `"t_us"`
//! timestamp. The JSON is hand-built (this crate has no deps) with full
//! string escaping, so each line parses under any strict JSON parser —
//! ci.sh pipes every line through `python3 -m json.tool`.
//!
//! The sidecar is write-only telemetry: nothing in the pipeline reads it
//! back, and when no sink is installed `emit_event` returns after one
//! relaxed atomic load.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// True when a trace sink is installed; callers can skip building event
/// payloads entirely when this is false.
pub fn trace_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Open `path` as the trace sink (truncating) and emit a `trace_open`
/// header event.
pub fn init_trace(path: &std::path::Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    *SINK.lock().unwrap() = Some(BufWriter::new(file));
    ENABLED.store(true, Ordering::Relaxed);
    emit_event("trace_open", &[("pid", Value::U64(std::process::id() as u64))]);
    Ok(())
}

/// Flush and drop the sink; subsequent events are discarded.
pub fn disable_trace() {
    ENABLED.store(false, Ordering::Relaxed);
    if let Some(mut w) = SINK.lock().unwrap().take() {
        let _ = w.flush();
    }
}

/// A JSON-encodable field value.
pub enum Value<'a> {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(&'a str),
    OwnedStr(String),
    U64s(&'a [u64]),
    F64s(&'a [f64]),
    /// `[[a,b],...]` pairs — used for histogram buckets.
    Pairs(&'a [(u64, u64)]),
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    // JSON has no NaN/Inf; clamp to 0 rather than emit an invalid token.
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push('0');
    }
}

fn push_value(out: &mut String, v: &Value<'_>) {
    match v {
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => push_f64(out, *f),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => push_json_str(out, s),
        Value::OwnedStr(s) => push_json_str(out, s),
        Value::U64s(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&x.to_string());
            }
            out.push(']');
        }
        Value::F64s(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_f64(out, *x);
            }
            out.push(']');
        }
        Value::Pairs(ps) => {
            out.push('[');
            for (i, (a, b)) in ps.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                out.push_str(&a.to_string());
                out.push(',');
                out.push_str(&b.to_string());
                out.push(']');
            }
            out.push(']');
        }
    }
}

/// Render one event as a JSON line (exposed for tests).
pub fn render_event(ev: &str, fields: &[(&str, Value<'_>)]) -> String {
    let t_us = epoch().elapsed().as_micros() as u64;
    let mut line = String::with_capacity(64 + fields.len() * 24);
    line.push_str("{\"ev\":");
    push_json_str(&mut line, ev);
    line.push_str(",\"t_us\":");
    line.push_str(&t_us.to_string());
    for (k, v) in fields {
        line.push(',');
        push_json_str(&mut line, k);
        line.push(':');
        push_value(&mut line, v);
    }
    line.push('}');
    line
}

/// Write one event line to the sink (no-op when tracing is off).
pub fn emit_event(ev: &str, fields: &[(&str, Value<'_>)]) {
    if !trace_enabled() {
        return;
    }
    let line = render_event(ev, fields);
    if let Some(w) = SINK.lock().unwrap().as_mut() {
        let _ = writeln!(w, "{line}");
    }
}

/// Drain spans and the metrics registry into the sidecar, then flush the
/// writer. Call at end of run (and optionally at checkpoints).
pub fn flush_trace() {
    if !trace_enabled() {
        return;
    }
    let (spans, dropped) = crate::span::take_spans();
    for s in &spans {
        emit_event(
            "span",
            &[
                ("name", Value::Str(s.name)),
                ("path", Value::Str(&s.path)),
                ("start_us", Value::U64(s.start_us)),
                ("dur_us", Value::U64(s.dur_us)),
                ("warmup", Value::Bool(s.warmup)),
                ("thread", Value::U64(s.thread)),
            ],
        );
    }
    if dropped > 0 {
        emit_event("span_overflow", &[("dropped", Value::U64(dropped))]);
    }
    let snap = crate::metrics::metrics_snapshot();
    for (name, v) in &snap.counters {
        emit_event("counter", &[("name", Value::Str(name)), ("value", Value::U64(*v))]);
    }
    for (name, v) in &snap.gauges {
        emit_event("gauge", &[("name", Value::Str(name)), ("value", Value::U64(*v))]);
    }
    for (name, h) in &snap.hists {
        let buckets = h.nonzero();
        emit_event(
            "hist",
            &[
                ("name", Value::Str(name)),
                ("count", Value::U64(h.count())),
                ("sum", Value::U64(h.sum())),
                ("p50", Value::U64(h.quantile(0.5))),
                ("p99", Value::U64(h.quantile(0.99))),
                ("buckets", Value::Pairs(&buckets)),
            ],
        );
    }
    if let Some(w) = SINK.lock().unwrap().as_mut() {
        let _ = w.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_escaped_json() {
        let line = render_event(
            "log",
            &[
                ("msg", Value::Str("a \"quoted\"\nline\t\\")),
                ("n", Value::U64(7)),
                ("x", Value::F64(1.5)),
                ("bad", Value::F64(f64::NAN)),
                ("ok", Value::Bool(true)),
                ("xs", Value::U64s(&[1, 2, 3])),
                ("ps", Value::Pairs(&[(1, 2), (3, 4)])),
            ],
        );
        assert!(line.starts_with("{\"ev\":\"log\",\"t_us\":"));
        assert!(line.contains("\\\"quoted\\\"\\nline\\t\\\\"));
        assert!(line.contains("\"n\":7"));
        assert!(line.contains("\"x\":1.5"));
        assert!(line.contains("\"bad\":0"));
        assert!(line.contains("\"ok\":true"));
        assert!(line.contains("\"xs\":[1,2,3]"));
        assert!(line.contains("\"ps\":[[1,2],[3,4]]"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn control_chars_are_escaped() {
        let mut s = String::new();
        push_json_str(&mut s, "\u{1}\u{1f}");
        assert_eq!(s, "\"\\u0001\\u001f\"");
    }

    #[test]
    fn sidecar_round_trip() {
        let _g = crate::testlock::LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("dynaddr_obs_trace_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        init_trace(&path).unwrap();
        emit_event("heartbeat", &[("done", Value::U64(10))]);
        crate::metrics::reset_metrics();
        crate::metrics::counter_add("test.trace.counter", 3);
        flush_trace();
        disable_trace();
        crate::metrics::reset_metrics();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.lines().count() >= 3);
        assert!(body.contains("\"ev\":\"trace_open\""));
        assert!(body.contains("\"ev\":\"heartbeat\""));
        assert!(body.contains("test.trace.counter"));
        // Every line is a single JSON object.
        for line in body.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line: {line}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
